package static

import "strings"

// Shared allocator-interface name knowledge. This is the single table of
// per-OS allocator/free/heap symbol heuristics; the open-source Prober mode,
// the closed-source Prober mode and the static allocator-candidate ranker
// all consult it (previously the probe package kept its own copies).

// AllocSig is one known allocator interface: the symbol name plus which
// argument register carries the size and which register carries the
// returned pointer.
type AllocSig struct {
	Name    string
	SizeArg string
	RetArg  string
}

// FreeSig is one known deallocator interface. SizeArg is empty when the
// interface carries no size.
type FreeSig struct {
	Name    string
	PtrArg  string
	SizeArg string
}

// AllocSigs lists the allocator entry points of the supported embedded
// operating systems. With source (or symbols) available the signatures are
// known, so argument registers come from this table rather than from
// behavioural inference.
var AllocSigs = []AllocSig{
	// Embedded Linux
	{"kmalloc", "a0", "a0"},
	{"__kmalloc", "a0", "a0"},
	{"kmem_cache_alloc", "a1", "a0"},
	{"alloc_pages", "a0", "a0"},
	// FreeRTOS
	{"pvPortMalloc", "a0", "a0"},
	// LiteOS (pool-based: size is the second argument)
	{"LOS_MemAlloc", "a1", "a0"},
	// VxWorks
	{"memPartAlloc", "a1", "a0"},
	// generic libc-style
	{"malloc", "a0", "a0"},
}

// FreeSigs lists the matching deallocator entry points.
var FreeSigs = []FreeSig{
	{"kfree", "a0", ""},
	{"kmem_cache_free", "a1", ""},
	{"__free_pages", "a0", ""},
	{"vPortFree", "a0", ""},
	{"LOS_MemFree", "a1", ""},
	{"memPartFree", "a1", ""},
	{"free", "a0", ""},
}

// HeapSymbolPatterns matches the well-known heap backing-store symbols of
// the supported embedded operating systems (substring, case-insensitive).
var HeapSymbolPatterns = []string{
	"slab_pool",   // our Embedded Linux personality
	"mem_map",     // page allocator backing store
	"ucHeap",      // FreeRTOS heap_4
	"m_aucSysMem", // LiteOS system memory pool
	"memPartPool", // VxWorks memory partition
	"heap",        // generic
}

// MatchAllocName reports whether sym names a known allocator interface.
func MatchAllocName(sym string) (AllocSig, bool) {
	for _, p := range AllocSigs {
		if sym == p.Name {
			return p, true
		}
	}
	return AllocSig{}, false
}

// MatchFreeName reports whether sym names a known deallocator interface.
func MatchFreeName(sym string) (FreeSig, bool) {
	for _, p := range FreeSigs {
		if sym == p.Name {
			return p, true
		}
	}
	return FreeSig{}, false
}

// MatchHeapSymbol reports whether sym looks like a heap backing store.
func MatchHeapSymbol(sym string) bool {
	ls := strings.ToLower(sym)
	for _, p := range HeapSymbolPatterns {
		if strings.Contains(ls, strings.ToLower(p)) {
			return true
		}
	}
	return false
}
