package static

import (
	"fmt"
	"sort"

	"embsan/internal/isa"
	"embsan/internal/kasm"
)

// Lint rule identifiers.
const (
	RuleTextDecode    = "text-decode"    // every text word must decode
	RuleSanckCoverage = "sanck-coverage" // every access needs a hypercall probe
	RuleSanckOrphan   = "sanck-orphan"   // every probe needs a matching access
	RuleGlobalRedzone = "global-redzone" // global redzone layout consistency
	RuleXref          = "xref"           // symbol table / link map cross-references
	RuleRaces         = "races"          // lockset / shared-state race triage
)

// Diag is one lint diagnostic, addressed to a symbol+offset location so
// toolchain regressions can be tracked to the emitting site without running
// the firmware.
type Diag struct {
	Rule string
	Addr uint32
	Sym  string // symbolised location ("memPartAlloc+0x10" or raw hex)
	Msg  string
}

func (d Diag) String() string {
	return fmt.Sprintf("%#08x (%s): %s: %s", d.Addr, d.Sym, d.Rule, d.Msg)
}

// Lint statically audits a built image. For EMBSAN-C builds it verifies
// instrumentation completeness: every load/store/atomic site must be
// covered by an immediately preceding SANCK probe carrying the matching
// size/direction/base/offset, unless the site lies in a recorded NoSan
// region; every probe must in turn guard a matching access. All builds get
// text decodability and symbol-table/link-map cross-reference checks; the
// metadata-dependent rules are skipped on stripped images (the metadata is
// gone — that is what stripping means).
func Lint(img *kasm.Image) ([]Diag, error) {
	a, err := Analyze(img)
	if err != nil {
		return nil, err
	}
	var diags []Diag
	report := func(rule string, addr uint32, format string, args ...any) {
		diags = append(diags, Diag{
			Rule: rule,
			Addr: addr,
			Sym:  img.Symbolize(addr),
			Msg:  fmt.Sprintf(format, args...),
		})
	}

	lintText(a, report)
	if img.Meta.Sanitize == kasm.SanEmbsanC && !img.Stripped {
		lintGlobals(img, report)
	}
	lintXref(img, report)

	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Addr < diags[j].Addr })
	return diags, nil
}

// LintSkips reports which metadata-dependent rule groups Lint cannot run on
// this image, with the reason. A non-empty result means a "clean" verdict
// covers only the universally-applicable checks — callers surface this so a
// clean report on a metadata-less binary is never mistaken for a full
// instrumentation audit.
func LintSkips(img *kasm.Image) []string {
	var skips []string
	switch {
	case img.Stripped:
		skips = append(skips,
			RuleSanckCoverage+"/"+RuleSanckOrphan+": link metadata stripped from the image",
			RuleGlobalRedzone+": global layout metadata stripped from the image")
	case img.Meta.Sanitize != kasm.SanEmbsanC:
		skips = append(skips,
			RuleSanckCoverage+"/"+RuleSanckOrphan+": image has no EMBSAN-C link metadata ("+img.Meta.Sanitize.String()+" build)",
			RuleGlobalRedzone+": image has no EMBSAN-C global metadata")
	}
	if len(img.Symbols) == 0 && !img.Stripped {
		skips = append(skips, RuleXref+": image carries no symbol table")
	}
	if img.Stripped || len(img.Symbols) == 0 {
		// The lockset analysis classifies objects, and objects come from
		// the symbol table: without anchors every access is unresolved and
		// the triage would vacuously pass.
		skips = append(skips, RuleRaces+": no symbol anchors")
	}
	return skips
}

// lintText walks the text section once, checking decodability and — on
// EMBSAN-C builds — the probe/access pairing in both directions.
func lintText(a *Analysis, report func(string, uint32, string, ...any)) {
	img := a.Image
	embsanC := img.Meta.Sanitize == kasm.SanEmbsanC
	for pc := img.Base; pc < img.TextEnd(); pc += 4 {
		in, ok := a.InstAt(pc)
		if !ok {
			if int(pc-img.Base)+4 > len(img.Text) {
				report(RuleTextDecode, pc, "truncated word at end of text")
				continue
			}
			report(RuleTextDecode, pc, "word %#08x does not decode under %s",
				img.Arch.Word(img.Text[pc-img.Base:]), img.Arch)
			continue
		}
		switch isa.ClassOf(in.Op) {
		case isa.ClassLoad, isa.ClassStore, isa.ClassAtomic:
			if !embsanC || img.Stripped || img.Meta.InNoSan(pc) {
				continue
			}
			want := isa.SanckInfo(isa.AccessSize(in.Op), isa.IsWrite(in.Op),
				isa.ClassOf(in.Op) == isa.ClassAtomic)
			prev, pok := a.InstAt(pc - 4)
			switch {
			case !pok || prev.Op != isa.OpSANCK:
				// A FENCE pad at a recorded elision site is a probe the
				// link-time prover dropped; `embsan lint -elide` audits
				// the proof behind it.
				if pok && prev.Op == isa.OpFENCE {
					if e, ok := img.Meta.ElisionAt(pc - 4); ok && e.Access == pc {
						continue
					}
				}
				report(RuleSanckCoverage, pc, "%s has no hypercall probe",
					isa.Disasm(in, pc))
			case prev.Rd != want || prev.Rs1 != in.Rs1 || prev.Imm != accessOff(in):
				report(RuleSanckCoverage, pc, "%s probe mismatch: probe %s",
					isa.Disasm(in, pc), isa.Disasm(prev, pc-4))
			}
		case isa.ClassSanck:
			if !embsanC {
				report(RuleSanckOrphan, pc, "sanck in a %s build", img.Meta.Sanitize)
				continue
			}
			next, nok := a.InstAt(pc + 4)
			if !nok || !isAccess(next.Op) {
				report(RuleSanckOrphan, pc, "probe guards no access")
			}
		}
	}
}

func isAccess(op isa.Op) bool {
	switch isa.ClassOf(op) {
	case isa.ClassLoad, isa.ClassStore, isa.ClassAtomic:
		return true
	}
	return false
}

// accessOff returns the effective-address offset of a memory access as the
// instrumentation pass saw it: the immediate for plain loads/stores, zero
// for the register-addressed atomics.
func accessOff(in isa.Inst) int32 {
	switch in.Op {
	case isa.OpLRW, isa.OpSCW, isa.OpAMOADDW, isa.OpAMOSWAPW, isa.OpAMOORW, isa.OpAMOANDW:
		return 0
	}
	return in.Imm
}

// lintGlobals verifies the redzone layout of every metadata-recorded global
// against the build constant and the symbol table.
func lintGlobals(img *kasm.Image, report func(string, uint32, string, ...any)) {
	for _, g := range img.Meta.Globals {
		if g.Redzone != kasm.GlobalRedzone {
			report(RuleGlobalRedzone, g.Addr, "global %s has redzone %d, want %d",
				g.Name, g.Redzone, kasm.GlobalRedzone)
		}
		lo, hi := g.Addr-g.Redzone, g.Addr+g.Size+g.Redzone
		if lo < img.DataAddr || hi > img.MemTop() {
			report(RuleGlobalRedzone, g.Addr,
				"global %s redzoned range [%#x,%#x) escapes the data image [%#x,%#x)",
				g.Name, lo, hi, img.DataAddr, img.MemTop())
		}
		if len(img.Symbols) > 0 {
			s, ok := img.Lookup(g.Name)
			switch {
			case !ok:
				report(RuleGlobalRedzone, g.Addr, "global %s has no symbol", g.Name)
			case s.Addr != g.Addr || s.Size != g.Size:
				report(RuleGlobalRedzone, g.Addr,
					"global %s metadata [%#x,+%d) disagrees with symbol [%#x,+%d)",
					g.Name, g.Addr, g.Size, s.Addr, s.Size)
			}
		}
		// No other object may sit inside this global's redzones.
		for _, s := range img.Symbols {
			if s.Kind != kasm.SymObject || s.Name == g.Name || s.Size == 0 {
				continue
			}
			if s.Addr < hi && s.Addr+s.Size > lo &&
				(s.Addr+s.Size <= g.Addr || s.Addr >= g.Addr+g.Size) {
				report(RuleGlobalRedzone, g.Addr,
					"object %s [%#x,+%d) overlaps the redzone of global %s",
					s.Name, s.Addr, s.Size, g.Name)
			}
		}
	}
}

// lintXref verifies the symbol table and link-map cross-references: entry
// point placement, symbol ordering and section containment, and that the
// metadata's annotated allocator/free entry points resolve to function
// symbols.
func lintXref(img *kasm.Image, report func(string, uint32, string, ...any)) {
	if img.Entry < img.Base || img.Entry >= img.TextEnd() || img.Entry%4 != 0 {
		report(RuleXref, img.Entry, "entry point outside text [%#x,%#x)",
			img.Base, img.TextEnd())
	}
	var prev uint32
	for i, s := range img.Symbols {
		if i > 0 && s.Addr < prev {
			report(RuleXref, s.Addr, "symbol %s breaks address ordering", s.Name)
		}
		prev = s.Addr
		switch s.Kind {
		case kasm.SymFunc:
			if s.Addr < img.Base || s.Addr%4 != 0 || s.Addr+s.Size > img.TextEnd() {
				report(RuleXref, s.Addr, "function %s [%#x,+%d) escapes text [%#x,%#x)",
					s.Name, s.Addr, s.Size, img.Base, img.TextEnd())
			}
		case kasm.SymObject:
			if s.Addr < img.DataAddr || s.Addr+s.Size > img.MemTop() {
				report(RuleXref, s.Addr, "object %s [%#x,+%d) escapes data [%#x,%#x)",
					s.Name, s.Addr, s.Size, img.DataAddr, img.MemTop())
			}
		}
	}
	if img.Stripped || len(img.Symbols) == 0 {
		return
	}
	for _, lists := range []struct {
		kind  string
		names []string
	}{
		{"allocator", img.Meta.AllocFuncs},
		{"free", img.Meta.FreeFuncs},
	} {
		for _, name := range lists.names {
			s, ok := img.Lookup(name)
			if !ok {
				report(RuleXref, img.Base, "annotated %s %q has no symbol", lists.kind, name)
				continue
			}
			if s.Kind != kasm.SymFunc {
				report(RuleXref, s.Addr, "annotated %s %q is not a function", lists.kind, name)
			}
		}
	}
}
