package static_test

import (
	"strings"
	"testing"

	"embsan/internal/isa"
	"embsan/internal/kasm"
	"embsan/internal/static"
)

func lintClean(t *testing.T, img *kasm.Image) {
	t.Helper()
	diags, err := static.Lint(img)
	if err != nil {
		t.Fatalf("lint %s: %v", img.Name, err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

func wantRule(t *testing.T, img *kasm.Image, rule string) static.Diag {
	t.Helper()
	diags, err := static.Lint(img)
	if err != nil {
		t.Fatalf("lint %s: %v", img.Name, err)
	}
	for _, d := range diags {
		if d.Rule == rule {
			if d.Sym == "" {
				t.Fatalf("diagnostic %s has no symbolised address", d)
			}
			return d
		}
	}
	t.Fatalf("no %s diagnostic; got %d diagnostics: %v", rule, len(diags), diags)
	return static.Diag{}
}

func TestLintCleanEmbsanC(t *testing.T) {
	for arch := isa.Arch(0); arch < isa.NumArchs; arch++ {
		lintClean(t, buildMini(t, arch, kasm.SanEmbsanC))
	}
}

func TestLintCleanUninstrumented(t *testing.T) {
	lintClean(t, buildMini(t, isa.ArchARM32E, kasm.SanNone))
	lintClean(t, buildMini(t, isa.ArchARM32E, kasm.SanNone).Strip())
}

// TestLintMissingProbe knocks out one hypercall probe and expects an
// addressed sanck-coverage diagnostic naming the unprotected access.
func TestLintMissingProbe(t *testing.T) {
	img := buildMini(t, isa.ArchARM32E, kasm.SanEmbsanC)
	tampered := replaceFirstSanck(t, img)
	d := wantRule(t, tampered, static.RuleSanckCoverage)
	if !strings.Contains(d.Msg, "no hypercall probe") {
		t.Fatalf("unexpected message: %s", d)
	}
	// The diagnostic must be symbol-addressed, not a raw hex fallback.
	if strings.HasPrefix(d.Sym, "0x") {
		t.Fatalf("diagnostic not symbol-addressed: %s", d)
	}
}

// TestLintOrphanProbe rewrites an access into an ALU op, leaving its probe
// guarding nothing.
func TestLintOrphanProbe(t *testing.T) {
	img := buildMini(t, isa.ArchARM32E, kasm.SanEmbsanC)
	out := *img
	out.Text = append([]byte(nil), img.Text...)
	for pc := out.Base; pc < out.TextEnd(); pc += 4 {
		in, err := isa.Decode(out.Arch.Word(out.Text[pc-out.Base:]), out.Arch)
		if err != nil || in.Op != isa.OpSANCK {
			continue
		}
		w, err := isa.Encode(isa.Inst{Op: isa.OpADD, Rd: 4, Rs1: 4, Rs2: 4}, out.Arch)
		if err != nil {
			t.Fatal(err)
		}
		out.Arch.PutWord(out.Text[pc+4-out.Base:], w)
		break
	}
	wantRule(t, &out, static.RuleSanckOrphan)
}

// TestLintBrokenRedzone removes a global's redzone from the metadata and
// expects a global-redzone diagnostic.
func TestLintBrokenRedzone(t *testing.T) {
	img := buildMini(t, isa.ArchARM32E, kasm.SanEmbsanC)
	out := *img
	out.Meta.Globals = append([]kasm.GlobalMeta(nil), img.Meta.Globals...)
	if len(out.Meta.Globals) == 0 {
		t.Fatalf("no redzoned globals in metadata")
	}
	out.Meta.Globals[0].Redzone = 0
	d := wantRule(t, &out, static.RuleGlobalRedzone)
	if !strings.Contains(d.Msg, out.Meta.Globals[0].Name) {
		t.Fatalf("diagnostic does not name the global: %s", d)
	}
}

// TestLintBrokenXref points an annotated allocator at a nonexistent symbol.
func TestLintBrokenXref(t *testing.T) {
	img := buildMini(t, isa.ArchARM32E, kasm.SanEmbsanC)
	out := *img
	out.Meta.AllocFuncs = append([]string{"no_such_fn"}, img.Meta.AllocFuncs...)
	wantRule(t, &out, static.RuleXref)
}

// TestLintUndecodableText corrupts one instruction word beyond the opcode
// space.
func TestLintUndecodableText(t *testing.T) {
	img := buildMini(t, isa.ArchARM32E, kasm.SanNone)
	out := *img
	out.Text = append([]byte(nil), img.Text...)
	// Opcode byte 0 decodes to OpInvalid in the arm32e frontend.
	out.Arch.PutWord(out.Text[len(out.Text)-4:], 0x00000000)
	wantRule(t, &out, static.RuleTextDecode)
}

// replaceFirstSanck swaps the first SANCK instruction for a FENCE, the
// model of a toolchain regression that drops a probe.
func replaceFirstSanck(t *testing.T, img *kasm.Image) *kasm.Image {
	t.Helper()
	out := *img
	out.Text = append([]byte(nil), img.Text...)
	for pc := out.Base; pc < out.TextEnd(); pc += 4 {
		in, err := isa.Decode(out.Arch.Word(out.Text[pc-out.Base:]), out.Arch)
		if err != nil || in.Op != isa.OpSANCK {
			continue
		}
		w, err := isa.Encode(isa.Inst{Op: isa.OpFENCE}, out.Arch)
		if err != nil {
			t.Fatal(err)
		}
		out.Arch.PutWord(out.Text[pc-out.Base:], w)
		return &out
	}
	t.Fatalf("image %s contains no SANCK to remove", img.Name)
	return nil
}
