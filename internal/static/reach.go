package static

import "embsan/internal/kasm"

// ReachReport summarises static reachability: how much of the image's code
// can possibly execute starting from the entry point (plus every
// address-table target, since dispatchers and hart spawns jump through
// those). Fuzzing campaigns use ReachableBlocks as the coverage
// denominator, with ReachableLeaders supplying the matching numerator set.
//
// The block counts are *leader* counts: the dynamic translation engine can
// restart a translation block mid-stream (quantum expiry, PC hooks), so
// raw dynamic TB-entry PCs are a superset of static leaders and are not
// comparable to this bound. Coverage fractions must count executed
// *leaders* (see fuzz.Stats.CoverLeaders) against ReachableBlocks.
type ReachReport struct {
	TotalFuncs      int
	ReachableFuncs  int
	TotalBlocks     int
	ReachableBlocks int
	TotalInsts      int
	ReachableInsts  int
}

// Reach computes the reachability report for the analysed image.
func (a *Analysis) Reach() ReachReport {
	var r ReachReport
	for _, f := range a.Funcs {
		r.TotalFuncs++
		if a.FuncReachable(f.Entry) {
			r.ReachableFuncs++
		}
		for _, b := range f.Blocks {
			r.TotalBlocks++
			n := int(b.End-b.Start) / 4
			r.TotalInsts += n
			if a.reach[b.Start] {
				r.ReachableBlocks++
				r.ReachableInsts += n
			}
		}
	}
	return r
}

// ReachableLeaders returns the statically reachable basic-block leader
// PCs in ascending address order — the denominator set campaign drivers
// hand to the fuzzer's coverage accounting (fuzz.Config.ReachableLeaders).
func (a *Analysis) ReachableLeaders() []uint32 {
	var out []uint32
	for _, f := range a.Funcs {
		for _, b := range f.Blocks {
			if a.reach[b.Start] {
				out = append(out, b.Start)
			}
		}
	}
	return out
}

// Reachability is the one-call convenience used by campaign drivers: it
// analyses img and returns the reachability report.
func Reachability(img *kasm.Image) (ReachReport, error) {
	a, err := Analyze(img)
	if err != nil {
		return ReachReport{}, err
	}
	return a.Reach(), nil
}
