// Package static is EMBSAN's offline binary analyzer. It decodes a built
// firmware image (any of the three EVA frontends) into micro-ops and
// recovers function boundaries, basic blocks, a control-flow graph, a call
// graph and a light per-function dataflow summary — without executing a
// single guest instruction.
//
// Three consumers sit on top of it:
//
//   - the closed-source Prober seeds its behavioural allocator classifier
//     with statically ranked candidates (rank.go), collapsing its dry-run
//     schedule to a single trace pass;
//   - `embsan lint` audits EMBSAN-C builds for instrumentation completeness
//     (lint.go);
//   - the fuzzing campaign statistics report coverage as a fraction of the
//     statically reachable translation-block upper bound (reach.go).
package static

import (
	"fmt"
	"sort"

	"embsan/internal/isa"
	"embsan/internal/kasm"
)

// Block is one basic block: a maximal straight-line instruction range.
type Block struct {
	Start uint32   // address of the first instruction
	End   uint32   // first address past the block
	Succs []uint32 // statically known successor block addresses
}

// Summary is the light per-function dataflow summary. It is a linear
// (flow-insensitive) approximation: registers are tracked in instruction
// order, which is exactly enough to recognise allocator-shaped code.
type Summary struct {
	WritesRet     bool    // the function writes a0 somewhere
	PointerReturn bool    // some return path leaves a memory-derived value in a0
	SizeLike      [4]bool // aN participates in pointer arithmetic or heap-bound compares
	Loads         int
	Stores        int
	Atomics       int
	Calls         int
}

// AllocShaped reports whether the summary matches an allocator signature:
// the function returns a pointer-like value and consumes a size-like
// argument.
func (s Summary) AllocShaped() bool {
	if !s.PointerReturn {
		return false
	}
	for _, b := range s.SizeLike {
		if b {
			return true
		}
	}
	return false
}

// Func is one recovered function.
type Func struct {
	Entry   uint32
	End     uint32 // boundary estimate: next entry or end of text
	Name    string // symbol name when available, else "fn_%#x"
	Blocks  []Block
	Exits   []uint32 // return sites (jalr zero, ra, 0)
	Callees []uint32 // entries of directly called functions (deduplicated, sorted)
	FanIn   int      // distinct direct callsites + address-table references
}

// Analysis is the full static recovery over one image.
type Analysis struct {
	Image *kasm.Image

	Funcs []*Func // sorted by Entry

	funcIdx  map[uint32]*Func
	insts    []isa.Inst // indexed by (pc-Base)/4; Op==OpInvalid when undecodable
	valid    []bool
	entries  []uint32        // sorted function entries
	indirect []uint32        // address-table / address-materialisation targets in text
	reach    map[uint32]bool // reachable block leaders
}

// Analyze recovers the static structure of img. It never executes guest
// code and never panics on malformed input: undecodable words become opaque
// block terminators, and out-of-range control transfers are dropped.
func Analyze(img *kasm.Image) (*Analysis, error) {
	if img == nil {
		return nil, fmt.Errorf("static: nil image")
	}
	if img.Base%4 != 0 {
		return nil, fmt.Errorf("static: text base %#x is not word-aligned", img.Base)
	}
	if uint64(img.Base)+uint64(len(img.Text)) > uint64(^uint32(0)) {
		return nil, fmt.Errorf("static: text extends past the 32-bit address space")
	}
	a := &Analysis{
		Image:   img,
		funcIdx: map[uint32]*Func{},
		reach:   map[uint32]bool{},
	}
	a.decode()
	a.findEntries()
	a.recoverFuncs()
	a.computeReachability()
	return a, nil
}

// ---- decoding ----

func (a *Analysis) decode() {
	img := a.Image
	n := len(img.Text) / 4
	a.insts = make([]isa.Inst, n)
	a.valid = make([]bool, n)
	for i := 0; i < n; i++ {
		in, err := isa.Decode(img.Arch.Word(img.Text[i*4:]), img.Arch)
		if err == nil {
			a.insts[i] = in
			a.valid[i] = true
		}
	}
}

// InstAt returns the decoded instruction at pc; ok is false outside text or
// on an undecodable word.
func (a *Analysis) InstAt(pc uint32) (isa.Inst, bool) {
	img := a.Image
	if pc < img.Base || pc%4 != 0 {
		return isa.Inst{}, false
	}
	i := (pc - img.Base) / 4
	if int(i) >= len(a.insts) || !a.valid[i] {
		return isa.Inst{}, false
	}
	return a.insts[i], true
}

func (a *Analysis) inText(pc uint32) bool {
	return pc >= a.Image.Base && pc < a.Image.TextEnd() && pc%4 == 0
}

// ---- function entry discovery ----

func (a *Analysis) findEntries() {
	img := a.Image
	set := map[uint32]bool{}
	if a.inText(img.Entry) {
		set[img.Entry] = true
	}
	for _, s := range img.Symbols {
		if s.Kind == kasm.SymFunc && a.inText(s.Addr) {
			set[s.Addr] = true
		}
	}
	// Direct calls: jal with the link register.
	for i, in := range a.insts {
		if !a.valid[i] || in.Op != isa.OpJAL || in.Rd != isa.RegRA {
			continue
		}
		pc := img.Base + uint32(i)*4
		if t := pc + uint32(in.Imm)*4; a.inText(t) {
			set[t] = true
		}
	}
	// Indirect targets: (1) data-section words that point into text — the
	// address tables behind syscall dispatch and hart spawning; (2) lui+addi
	// address materialisations (the La idiom) whose value lands in text;
	// (3) auipc+addi materialisations (the PC-relative LaPC idiom of the
	// non-mips toolchains); (4) self-relative jump tables: a materialised
	// data pointer followed by words that, added to the table base mod 2^32,
	// land in text. Absolute and self-relative interpretations cannot alias:
	// data lies above TextEnd, so base+word reaches text only by wrapping —
	// exactly the "negative offset" encoding — while a self-relative word is
	// itself far too large to pass the absolute inText test.
	indir := map[uint32]bool{}
	tables := map[uint32]bool{}
	addMat := func(v uint32) {
		if a.inText(v) {
			indir[v] = true
		} else if v >= img.DataAddr && v%4 == 0 &&
			uint64(v)+4 <= uint64(img.DataAddr)+uint64(len(img.Data)) {
			tables[v] = true
		}
	}
	for off := 0; off+4 <= len(img.Data); off += 4 {
		if v := img.Arch.Word(img.Data[off:]); a.inText(v) {
			indir[v] = true
		}
	}
	for i := 0; i+1 < len(a.insts); i++ {
		if !a.valid[i] || !a.valid[i+1] {
			continue
		}
		hi, add := a.insts[i], a.insts[i+1]
		if add.Op != isa.OpADDI || add.Rd != hi.Rd || add.Rs1 != hi.Rd {
			continue
		}
		switch hi.Op {
		case isa.OpLUI:
			addMat(uint32(hi.Imm)<<12 + uint32(add.Imm))
		case isa.OpAUIPC:
			pc := img.Base + uint32(i)*4
			addMat(pc + uint32(hi.Imm)<<12 + uint32(add.Imm))
		}
	}
	// Walk each table-base candidate while its entries keep resolving; a
	// bounded scan so a stray pointer into a large data blob stays cheap.
	const maxRelTable = 64
	for base := range tables {
		for k := uint32(0); k < maxRelTable; k++ {
			off := base - img.DataAddr + k*4
			if uint64(off)+4 > uint64(len(img.Data)) {
				break
			}
			tgt := base + img.Arch.Word(img.Data[off:])
			if !a.inText(tgt) {
				break
			}
			indir[tgt] = true
		}
	}
	for t := range indir {
		a.indirect = append(a.indirect, t)
		set[t] = true
	}
	sort.Slice(a.indirect, func(i, j int) bool { return a.indirect[i] < a.indirect[j] })

	a.entries = make([]uint32, 0, len(set))
	for e := range set {
		a.entries = append(a.entries, e)
	}
	sort.Slice(a.entries, func(i, j int) bool { return a.entries[i] < a.entries[j] })
}

// Entries returns the sorted recovered function entry addresses.
func (a *Analysis) Entries() []uint32 { return a.entries }

// IndirectTargets returns text addresses referenced from data words or
// lui+addi address materialisations — potential indirect-call targets.
func (a *Analysis) IndirectTargets() []uint32 { return a.indirect }

// FuncAt returns the recovered function starting exactly at entry.
func (a *Analysis) FuncAt(entry uint32) (*Func, bool) {
	f, ok := a.funcIdx[entry]
	return f, ok
}

// FuncContaining returns the recovered function whose range covers pc.
func (a *Analysis) FuncContaining(pc uint32) (*Func, bool) {
	i := sort.Search(len(a.Funcs), func(i int) bool { return a.Funcs[i].Entry > pc })
	if i == 0 {
		return nil, false
	}
	f := a.Funcs[i-1]
	if pc >= f.Entry && pc < f.End {
		return f, true
	}
	return nil, false
}

// ---- function recovery ----

func (a *Analysis) recoverFuncs() {
	img := a.Image
	fanIn := map[uint32]int{}
	for i := range a.entries {
		entry := a.entries[i]
		end := img.TextEnd()
		if i+1 < len(a.entries) {
			end = a.entries[i+1]
		}
		f := &Func{Entry: entry, End: end, Name: fmt.Sprintf("fn_%#x", entry)}
		if s, ok := img.FuncAt(entry); ok && s.Addr == entry {
			f.Name = s.Name
		}
		a.buildBlocks(f)
		a.Funcs = append(a.Funcs, f)
		a.funcIdx[entry] = f
	}
	// Fan-in: direct callsites plus one per address-table reference.
	for i, in := range a.insts {
		if !a.valid[i] || in.Op != isa.OpJAL || in.Rd != isa.RegRA {
			continue
		}
		pc := img.Base + uint32(i)*4
		if t := pc + uint32(in.Imm)*4; a.inText(t) {
			fanIn[t]++
		}
	}
	for _, t := range a.indirect {
		fanIn[t]++
	}
	for _, f := range a.Funcs {
		f.FanIn = fanIn[f.Entry]
	}
}

// buildBlocks splits [f.Entry, f.End) into basic blocks, collecting CFG
// edges, direct callees and return sites.
func (a *Analysis) buildBlocks(f *Func) {
	leaders := map[uint32]bool{f.Entry: true}
	inRange := func(pc uint32) bool { return pc >= f.Entry && pc < f.End && pc%4 == 0 }
	for pc := f.Entry; pc < f.End; pc += 4 {
		in, ok := a.InstAt(pc)
		if !ok {
			// Opaque word: the next instruction (if any) starts a new block.
			if inRange(pc + 4) {
				leaders[pc+4] = true
			}
			continue
		}
		switch isa.ClassOf(in.Op) {
		case isa.ClassBranch:
			if t := pc + uint32(in.Imm)*4; inRange(t) {
				leaders[t] = true
			}
			if inRange(pc + 4) {
				leaders[pc+4] = true
			}
		case isa.ClassJump:
			if in.Op == isa.OpJAL && in.Rd != isa.RegRA {
				if t := pc + uint32(in.Imm)*4; inRange(t) {
					leaders[t] = true
				}
			}
			if inRange(pc + 4) {
				leaders[pc+4] = true
			}
		default:
			if isa.Terminates(in.Op) && inRange(pc+4) {
				leaders[pc+4] = true
			}
		}
	}
	starts := make([]uint32, 0, len(leaders))
	for l := range leaders {
		starts = append(starts, l)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })

	callees := map[uint32]bool{}
	for bi, start := range starts {
		blockEnd := f.End
		if bi+1 < len(starts) {
			blockEnd = starts[bi+1]
		}
		b := Block{Start: start}
		pc := start
		for ; pc < blockEnd; pc += 4 {
			in, ok := a.InstAt(pc)
			if !ok {
				// Treat the opaque word as an implicit terminator.
				pc += 4
				break
			}
			if in.Op == isa.OpJALR && in.Rd == isa.RegZero && in.Rs1 == isa.RegRA && in.Imm == 0 {
				f.Exits = append(f.Exits, pc)
			}
			if !isa.Terminates(in.Op) {
				continue
			}
			// Successors of the terminator.
			switch {
			case isa.ClassOf(in.Op) == isa.ClassBranch:
				if t := pc + uint32(in.Imm)*4; a.inText(t) {
					b.Succs = append(b.Succs, t)
				}
				b.Succs = append(b.Succs, pc+4)
			case in.Op == isa.OpJAL:
				t := pc + uint32(in.Imm)*4
				if in.Rd == isa.RegRA {
					if a.inText(t) {
						callees[t] = true
					}
					b.Succs = append(b.Succs, pc+4) // the call returns here
				} else if a.inText(t) {
					b.Succs = append(b.Succs, t)
				}
			case in.Op == isa.OpJALR:
				// Indirect: a call falls through on return; a return or an
				// indirect jump has no static successor.
				if in.Rd == isa.RegRA {
					b.Succs = append(b.Succs, pc+4)
				}
			case in.Op == isa.OpYIELD:
				b.Succs = append(b.Succs, pc+4)
			case in.Op == isa.OpECALL, in.Op == isa.OpEBREAK, in.Op == isa.OpHALT:
				// faults / stops: no successors
			}
			pc += 4
			break
		}
		if pc >= blockEnd && len(b.Succs) == 0 {
			// Fell off the end of the block without a terminator: the next
			// block (or the next function) is the fall-through successor.
			last, lok := a.InstAt(blockEnd - 4)
			if pc == blockEnd && (!lok || !isa.Terminates(last.Op)) && a.inText(blockEnd) {
				b.Succs = append(b.Succs, blockEnd)
			}
		}
		b.End = pc
		if b.End > blockEnd {
			b.End = blockEnd
		}
		if b.End > b.Start {
			f.Blocks = append(f.Blocks, b)
		}
	}
	for c := range callees {
		f.Callees = append(f.Callees, c)
	}
	sort.Slice(f.Callees, func(i, j int) bool { return f.Callees[i] < f.Callees[j] })
}

// ---- reachability ----

// computeReachability walks the interprocedural CFG from the image entry
// point plus every indirect target (address-table entries can be invoked by
// dispatchers and hart spawns), marking block leaders.
func (a *Analysis) computeReachability() {
	var work []uint32
	push := func(pc uint32) {
		if b, ok := a.blockAt(pc); ok && !a.reach[b.Start] {
			a.reach[b.Start] = true
			work = append(work, b.Start)
		}
	}
	if a.inText(a.Image.Entry) {
		push(a.Image.Entry)
	}
	for _, t := range a.indirect {
		push(t)
	}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		b, ok := a.blockAt(pc)
		if !ok {
			continue
		}
		for _, s := range b.Succs {
			push(s)
		}
		// Calls made inside this block transfer to their callees.
		for p := b.Start; p < b.End; p += 4 {
			if in, ok := a.InstAt(p); ok && in.Op == isa.OpJAL && in.Rd == isa.RegRA {
				if t := p + uint32(in.Imm)*4; a.inText(t) {
					push(t)
				}
			}
		}
	}
}

// blockAt returns the block whose range covers pc.
func (a *Analysis) blockAt(pc uint32) (Block, bool) {
	f, ok := a.FuncContaining(pc)
	if !ok {
		return Block{}, false
	}
	i := sort.Search(len(f.Blocks), func(i int) bool { return f.Blocks[i].Start > pc })
	if i == 0 {
		return Block{}, false
	}
	b := f.Blocks[i-1]
	if pc >= b.Start && pc < b.End {
		return b, true
	}
	return Block{}, false
}

// BlockReachable reports whether the block starting at (or covering) pc is
// statically reachable from the entry point or an indirect target.
func (a *Analysis) BlockReachable(pc uint32) bool {
	b, ok := a.blockAt(pc)
	return ok && a.reach[b.Start]
}

// FuncReachable reports whether the function at entry is statically
// reachable.
func (a *Analysis) FuncReachable(entry uint32) bool {
	f, ok := a.funcIdx[entry]
	if !ok {
		return false
	}
	for _, b := range f.Blocks {
		if a.reach[b.Start] {
			return true
		}
	}
	return false
}

// ---- dataflow summary ----

// value-tracking lattice for the linear summary scan.
type vstate uint8

const (
	vUnknown vstate = 0
	vConst   vstate = 1 << iota // built from constants only
	vGlobal                     // contains a lui/auipc upper part (address-like)
	vMem                        // derived from a memory load
	vArg0    vstate = 1 << 4    // tainted by a0 on entry (vArg0 << k for ak)
)

func argBit(reg uint8) vstate {
	if reg >= isa.RegA0 && reg < isa.RegA0+4 {
		return vArg0 << (reg - isa.RegA0)
	}
	return 0
}

func (v vstate) anyArg() bool { return v&(vArg0|vArg0<<1|vArg0<<2|vArg0<<3) != 0 }

// Summarize computes the dataflow summary of f: a single linear pass over
// the function body tracking, per register, whether its value is constant,
// address-like (built with lui), memory-derived, or tainted by one of the
// first four argument registers.
func (a *Analysis) Summarize(f *Func) Summary {
	var sum Summary
	var regs [isa.NumRegs]vstate
	for k := uint8(0); k < 4; k++ {
		regs[isa.RegA0+k] = vArg0 << k
	}
	regs[isa.RegZero] = vConst

	markSize := func(v vstate) {
		for k := 0; k < 4; k++ {
			if v&(vArg0<<k) != 0 {
				sum.SizeLike[k] = true
			}
		}
	}
	set := func(rd uint8, v vstate) {
		if rd != isa.RegZero && int(rd) < isa.NumRegs {
			regs[rd] = v
		}
	}

	for pc := f.Entry; pc < f.End; pc += 4 {
		in, ok := a.InstAt(pc)
		if !ok {
			continue
		}
		switch isa.ClassOf(in.Op) {
		case isa.ClassLoad:
			sum.Loads++
			set(in.Rd, vMem)
		case isa.ClassStore:
			sum.Stores++
			if in.Op == isa.OpSCW {
				set(in.Rd, vConst)
			}
		case isa.ClassAtomic:
			sum.Atomics++
			set(in.Rd, vMem)
		case isa.ClassBranch:
			// A bounds check comparing an argument against an address-like or
			// loaded value is how allocators test "does the request fit".
			l, r := regs[in.Rs1], regs[in.Rs2]
			if l.anyArg() && r&(vMem|vGlobal) != 0 {
				markSize(l)
			}
			if r.anyArg() && l&(vMem|vGlobal) != 0 {
				markSize(r)
			}
		case isa.ClassJump:
			if in.Op == isa.OpJAL && in.Rd == isa.RegRA {
				sum.Calls++
				// Standard ABI: the callee clobbers a0 with its return value.
				set(isa.RegA0, vMem)
			}
			if in.Rd != isa.RegZero {
				set(in.Rd, vConst)
			}
		case isa.ClassSystem, isa.ClassSanck:
			if in.Op == isa.OpCSRR {
				set(in.Rd, vConst)
			}
		default: // ALU
			switch in.Op {
			case isa.OpLUI, isa.OpAUIPC:
				set(in.Rd, vGlobal)
			case isa.OpADD, isa.OpSUB, isa.OpOR, isa.OpXOR:
				// Plain register moves (add/sub/or/xor against the zero
				// register) copy the value state exactly, so arguments moved
				// to a temporary before use keep their argness.
				if in.Rs2 == isa.RegZero {
					set(in.Rd, regs[in.Rs1])
					break
				}
				if in.Rs1 == isa.RegZero && in.Op != isa.OpSUB {
					set(in.Rd, regs[in.Rs2])
					break
				}
				l, r := regs[in.Rs1], regs[in.Rs2]
				// Pointer arithmetic: argument added to an address-like or
				// memory-derived base.
				if l.anyArg() && r&(vMem|vGlobal) != 0 {
					markSize(l)
				}
				if r.anyArg() && l&(vMem|vGlobal) != 0 {
					markSize(r)
				}
				set(in.Rd, l|r)
			case isa.OpADDI, isa.OpANDI, isa.OpORI, isa.OpXORI,
				isa.OpSLLI, isa.OpSRLI, isa.OpSRAI:
				set(in.Rd, regs[in.Rs1])
			case isa.OpSLT, isa.OpSLTU:
				// Explicit bound compares are the branchless form of the
				// heap-fit test; they consume size arguments the same way.
				l, r := regs[in.Rs1], regs[in.Rs2]
				if l.anyArg() && r&(vMem|vGlobal) != 0 {
					markSize(l)
				}
				if r.anyArg() && l&(vMem|vGlobal) != 0 {
					markSize(r)
				}
				set(in.Rd, vConst)
			case isa.OpSLTI, isa.OpSLTIU:
				set(in.Rd, vConst)
			default:
				l, r := regs[in.Rs1], regs[in.Rs2]
				set(in.Rd, l|r)
			}
		}
		if in.Rd == isa.RegA0 && writesRd(in) {
			sum.WritesRet = true
		}
		// At each return site, classify what the linear scan says a0 holds.
		if in.Op == isa.OpJALR && in.Rd == isa.RegZero && in.Rs1 == isa.RegRA && in.Imm == 0 {
			if regs[isa.RegA0]&(vMem|vGlobal) != 0 {
				sum.PointerReturn = true
			}
		}
	}
	return sum
}

// writesRd reports whether inst architecturally writes its Rd field.
func writesRd(in isa.Inst) bool {
	switch isa.ClassOf(in.Op) {
	case isa.ClassStore:
		return in.Op == isa.OpSCW
	case isa.ClassBranch:
		return false
	case isa.ClassSystem:
		return in.Op == isa.OpCSRR
	case isa.ClassSanck:
		return false
	}
	return true
}
