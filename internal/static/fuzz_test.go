package static_test

import (
	"testing"

	"embsan/internal/guest/firmware"
	"embsan/internal/guest/mystery"
	"embsan/internal/isa"
	"embsan/internal/kasm"
	"embsan/internal/static"
	"embsan/internal/static/rehost"
)

// FuzzRecoverCFG feeds arbitrary bytes to the analyzer as image text/data:
// recovery, ranking, reachability and lint must never panic, whatever the
// input decodes to. The seed corpus is the three real firmware (one per
// frontend).
func FuzzRecoverCFG(f *testing.F) {
	for _, name := range []string{
		"OpenWRT-armvirt", // arm32e
		"OpenWRT-bcm63xx", // mips32e
		"OpenWRT-x86_64",  // x86e
	} {
		fw, err := firmware.Build(name)
		if err != nil {
			f.Fatalf("build %s: %v", name, err)
		}
		f.Add(uint8(fw.Image.Arch), fw.Image.Entry, fw.Image.Text, fw.Image.Data)
	}
	f.Fuzz(func(t *testing.T, archB uint8, entry uint32, text, data []byte) {
		img := &kasm.Image{
			Name:     "fuzz",
			Arch:     isa.Arch(archB % uint8(isa.NumArchs)),
			Base:     kasm.DefaultBase,
			Entry:    entry,
			Text:     text,
			Data:     data,
			DataAddr: kasm.DefaultBase + uint32(len(text)) + 64,
		}
		a, err := static.Analyze(img)
		if err != nil {
			return
		}
		a.Reach()
		a.RankAllocCandidates()
		if _, err := static.Lint(img); err != nil {
			t.Fatalf("lint errored on analyzable image: %v", err)
		}
	})
}

// FuzzRehostLift feeds arbitrary bytes to the rehosting lifter: whatever
// the input decodes to, Lift must not panic, the resulting profile must be
// internally consistent (Validate), its renderings must be reproducible,
// and the synthesized bridge must be constructible. The seed corpus is the
// mystery guest on all three frontends.
func FuzzRehostLift(f *testing.F) {
	for _, arch := range []isa.Arch{isa.ArchARM32E, isa.ArchMIPS32E, isa.ArchX86E} {
		fw, err := mystery.Build("Mystery", arch)
		if err != nil {
			f.Fatalf("build mystery: %v", err)
		}
		f.Add(uint8(arch), fw.Image.Entry, fw.Image.Text, fw.Image.Data)
	}
	f.Fuzz(func(t *testing.T, archB uint8, entry uint32, text, data []byte) {
		img := &kasm.Image{
			Name:     "fuzz",
			Arch:     isa.Arch(archB % uint8(isa.NumArchs)),
			Base:     kasm.DefaultBase,
			Entry:    entry,
			Text:     text,
			Data:     data,
			DataAddr: kasm.DefaultBase + uint32(len(text)) + 64,
		}
		p, err := rehost.Lift(img)
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("inconsistent profile: %v", verr)
		}
		if p.Render() == "" || p.RenderStub() == "" {
			t.Fatal("empty rendering")
		}
		q, err := rehost.Lift(img)
		if err != nil {
			t.Fatalf("second lift errored: %v", err)
		}
		if q.Render() != p.Render() {
			t.Fatal("lift is not deterministic")
		}
		rehost.Device(p) // must be constructible for any valid profile
	})
}
