package static_test

import (
	"fmt"
	"testing"

	"embsan/internal/emu"
	"embsan/internal/guest/firmware"
	"embsan/internal/guest/glib"
	"embsan/internal/guest/mystery"
	"embsan/internal/isa"
	"embsan/internal/kasm"
	"embsan/internal/static"
	"embsan/internal/static/races"
	"embsan/internal/static/rehost"
)

// FuzzRecoverCFG feeds arbitrary bytes to the analyzer as image text/data:
// recovery, ranking, reachability and lint must never panic, whatever the
// input decodes to. The seed corpus is the three real firmware (one per
// frontend).
func FuzzRecoverCFG(f *testing.F) {
	for _, name := range []string{
		"OpenWRT-armvirt", // arm32e
		"OpenWRT-bcm63xx", // mips32e
		"OpenWRT-x86_64",  // x86e
	} {
		fw, err := firmware.Build(name)
		if err != nil {
			f.Fatalf("build %s: %v", name, err)
		}
		f.Add(uint8(fw.Image.Arch), fw.Image.Entry, fw.Image.Text, fw.Image.Data)
	}
	f.Fuzz(func(t *testing.T, archB uint8, entry uint32, text, data []byte) {
		img := &kasm.Image{
			Name:     "fuzz",
			Arch:     isa.Arch(archB % uint8(isa.NumArchs)),
			Base:     kasm.DefaultBase,
			Entry:    entry,
			Text:     text,
			Data:     data,
			DataAddr: kasm.DefaultBase + uint32(len(text)) + 64,
		}
		a, err := static.Analyze(img)
		if err != nil {
			return
		}
		a.Reach()
		a.RankAllocCandidates()
		if _, err := static.Lint(img); err != nil {
			t.Fatalf("lint errored on analyzable image: %v", err)
		}
	})
}

// FuzzRehostLift feeds arbitrary bytes to the rehosting lifter: whatever
// the input decodes to, Lift must not panic, the resulting profile must be
// internally consistent (Validate), its renderings must be reproducible,
// and the synthesized bridge must be constructible. The seed corpus is the
// mystery guest on all three frontends.
func FuzzRehostLift(f *testing.F) {
	for _, arch := range []isa.Arch{isa.ArchARM32E, isa.ArchMIPS32E, isa.ArchX86E} {
		fw, err := mystery.Build("Mystery", arch)
		if err != nil {
			f.Fatalf("build mystery: %v", err)
		}
		f.Add(uint8(arch), fw.Image.Entry, fw.Image.Text, fw.Image.Data)
	}
	f.Fuzz(func(t *testing.T, archB uint8, entry uint32, text, data []byte) {
		img := &kasm.Image{
			Name:     "fuzz",
			Arch:     isa.Arch(archB % uint8(isa.NumArchs)),
			Base:     kasm.DefaultBase,
			Entry:    entry,
			Text:     text,
			Data:     data,
			DataAddr: kasm.DefaultBase + uint32(len(text)) + 64,
		}
		p, err := rehost.Lift(img)
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("inconsistent profile: %v", verr)
		}
		if p.Render() == "" || p.RenderStub() == "" {
			t.Fatal("empty rendering")
		}
		q, err := rehost.Lift(img)
		if err != nil {
			t.Fatalf("second lift errored: %v", err)
		}
		if q.Render() != p.Render() {
			t.Fatal("lift is not deterministic")
		}
		rehost.Device(p) // must be constructible for any valid profile
	})
}

// locksetGuest builds a two-hart guest from a fuzz-chosen op sequence: each
// byte emits a lock acquire/release, a shared-global access (plain, atomic,
// looped or through a callee), or ALU noise. The first half of the bytes
// drives the hart-0 task, the second half the spawned hart-1 task, so the
// fuzzer explores every mix of protected, hart-local and racy access
// patterns the lockset analysis must classify.
func locksetGuest(data []byte) (*kasm.Image, error) {
	const (
		z  = glib.Z
		a0 = glib.A0
		a1 = glib.A1
		a2 = glib.A2
		t0 = glib.T0
		t1 = glib.T1
	)
	locks := []string{"fz_lock0", "fz_lock1"}
	globals := []string{"fz_g0", "fz_g1", "fz_g2", "fz_g3"}

	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E})
	for _, l := range locks {
		b.GlobalRaw(l, 4)
	}
	for _, g := range globals {
		b.GlobalRaw(g, 4)
	}
	b.GlobalRaw("fz_stack", 2048)

	b.Func("_start")
	b.Li(a0, 1)
	b.La(a1, "fz_task_b")
	b.La(a2, "fz_stack")
	b.Li(t0, 2044)
	b.ADD(a2, a2, t0)
	b.HCALL(isa.HcallSpawn)
	b.Call("fz_task_a")
	b.Li(a0, 0)
	b.HCALL(isa.HcallExit)
	b.HALT()

	emitOps := func(name string, ops []byte) {
		for i, op := range ops {
			sel := int(op>>3) & 3
			switch op & 7 {
			case 0:
				b.La(a0, locks[sel&1])
				b.Call("spin_lock")
			case 1:
				b.La(a0, locks[sel&1])
				b.Call("spin_unlock")
			case 2:
				b.La(t0, globals[sel])
				b.LW(a1, t0, 0)
			case 3:
				b.La(t0, globals[sel])
				b.SW(a1, t0, 0)
			case 4:
				b.La(t0, globals[sel])
				b.Li(t1, 1)
				b.AMOADDW(z, t0, t1)
			case 5:
				lp := fmt.Sprintf("%s.l%d", name, i)
				b.Li(t1, 3)
				b.Label(lp)
				b.La(t0, globals[sel])
				b.LW(a1, t0, 0)
				b.ADDI(t1, t1, -1)
				b.BNEZ(t1, lp)
			case 6:
				b.Call(fmt.Sprintf("fz_touch%d", sel))
			default:
				b.ADDI(a1, a1, 1)
			}
		}
	}

	if len(data) > 48 {
		data = data[:48]
	}
	half := len(data) / 2

	b.Func("fz_task_a")
	b.Prologue(16)
	emitOps("fz_task_a", data[:half])
	b.Epilogue(16)

	// The spawned entry never returns: its RA is not a call site.
	b.Func("fz_task_b")
	emitOps("fz_task_b", data[half:])
	b.HALT()

	for i, g := range globals {
		b.Func(fmt.Sprintf("fz_touch%d", i))
		b.La(t0, g)
		b.SW(a1, t0, 0)
		b.Ret()
	}

	b.Func("spin_lock")
	b.Li(t1, 1)
	b.Label("spin_lock.retry")
	b.AMOSWAPW(t0, a0, t1)
	b.BEQZ(t0, "spin_lock.got")
	b.YIELD()
	b.J("spin_lock.retry")
	b.Label("spin_lock.got")
	b.FENCE()
	b.Ret()

	b.Func("spin_unlock")
	b.FENCE()
	b.AMOSWAPW(z, a0, z)
	b.Ret()

	return b.Link("fuzz-locksets")
}

// FuzzLocksets cross-checks the lockset analysis against concrete
// interleavings: for every fuzz-generated guest, any access the analysis
// classifies as always-protected must — on every concrete execution, under
// several interleaving seeds — retire with its proven lockset actually held
// by the executing hart. A violation means the must-lockset fixpoint proved
// something false, the exact unsoundness that would silence KCSAN on a real
// race.
func FuzzLocksets(f *testing.F) {
	// acquire g0-store release, mirrored on both harts (protected);
	// unlocked stores on both harts (racy); atomics and loops; calls;
	// unbalanced acquire/release and lock-mixing.
	f.Add([]byte{0x00, 0x03, 0x01, 0x00, 0x03, 0x01})
	f.Add([]byte{0x03, 0x0b, 0x07, 0x03, 0x0b})
	f.Add([]byte{0x04, 0x0d, 0x06, 0x0c, 0x05, 0x16, 0x1e})
	f.Add([]byte{0x00, 0x03, 0x08, 0x0b, 0x09, 0x01, 0x00, 0x03, 0x01})
	f.Add([]byte{0x00, 0x08, 0x03, 0x0b, 0x13, 0x1b, 0x01, 0x09})

	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := locksetGuest(data)
		if err != nil {
			return
		}
		an, err := static.Analyze(img)
		if err != nil {
			t.Fatalf("analyze errored on linked image: %v", err)
		}
		r := races.Analyze(an, races.Options{})

		// The proof obligations: every plain access of an always-protected
		// object must hold the object's proven lockset when it retires.
		need := map[uint32][]uint32{}
		for _, o := range r.Objects {
			if o.Class != races.ClassProtected || len(o.Lockset) == 0 {
				continue
			}
			for _, ai := range o.Accesses {
				if acc := &r.Accesses[ai]; !acc.Atomic {
					need[acc.PC] = o.Lockset
				}
			}
		}

		for _, seed := range []uint64{3, 11} {
			held := map[int]map[uint32]bool{}
			m, err := emu.New(img, emu.Config{MaxHarts: 2, Seed: seed})
			if err != nil {
				t.Fatalf("seed %d: machine: %v", seed, err)
			}
			m.TraceHook = func(hart int, pc uint32, in isa.Inst) {
				h := m.Hart(hart)
				if in.Op == isa.OpAMOSWAPW {
					addr, val := h.Regs[in.Rs1], h.Regs[in.Rs2]
					old, _ := m.Peek(addr, 4)
					hm := held[hart]
					if hm == nil {
						hm = map[uint32]bool{}
						held[hart] = hm
					}
					switch {
					case val == 0:
						delete(hm, addr)
					case old == 0:
						hm[addr] = true
					}
					return
				}
				for _, l := range need[pc] {
					if !held[hart][l] {
						t.Errorf("seed %d: access at %#x (%s) proven protected by lock %#x, but hart %d retired it without holding the lock",
							seed, pc, img.Symbolize(pc), l, hart)
					}
				}
			}
			m.Run(300_000)
		}
	})
}
