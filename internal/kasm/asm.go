package kasm

import (
	"fmt"
	"strconv"
	"strings"

	"embsan/internal/isa"
)

// Assemble parses EVA32 assembly source into an image via the builder, so
// text assembly and the structured builder share one code path. The syntax
// mirrors the disassembler's output plus a few directives:
//
//	.func name            start a function
//	.global name, size    reserve a zero object (redzoned when sanitizing)
//	.globalraw name, size reserve a raw object (heaps, stacks)
//	.asciz name, "text"   NUL-terminated string
//	.word name, v, ...    initialised words
//	label:                local label
//	add a0, a1, a2        instructions (see the isa package mnemonics)
//	lw a0, 8(sp)          loads/stores use off(base)
//	li/la/mv/call/j/ret   the usual pseudo-instructions
func Assemble(src string, target Target) (*Image, error) {
	b := NewBuilder(target)
	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		if err := asmLine(b, line); err != nil {
			return nil, fmt.Errorf("kasm: line %d: %w", lineNo+1, err)
		}
	}
	return b.Link("asm")
}

func stripComment(s string) string {
	for _, sep := range []string{";", "//", "#"} {
		if i := strings.Index(s, sep); i >= 0 {
			s = s[:i]
		}
	}
	return strings.TrimSpace(s)
}

func asmLine(b *Builder, line string) error {
	// Directives.
	if strings.HasPrefix(line, ".") {
		return asmDirective(b, line)
	}
	// Labels.
	if strings.HasSuffix(line, ":") {
		b.Label(strings.TrimSuffix(line, ":"))
		return nil
	}
	// Instructions.
	op, rest, _ := strings.Cut(line, " ")
	args := splitArgs(rest)
	return asmInst(b, strings.ToLower(op), args)
}

func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func asmDirective(b *Builder, line string) error {
	dir, rest, _ := strings.Cut(line, " ")
	args := splitArgs(rest)
	switch dir {
	case ".func":
		if len(args) != 1 {
			return fmt.Errorf(".func wants a name")
		}
		b.Func(args[0])
	case ".global", ".globalraw":
		if len(args) != 2 {
			return fmt.Errorf("%s wants name, size", dir)
		}
		size, err := parseImm(args[1])
		if err != nil {
			return err
		}
		if dir == ".global" {
			b.Global(args[0], uint32(size))
		} else {
			b.GlobalRaw(args[0], uint32(size))
		}
	case ".asciz":
		if len(args) < 2 {
			return fmt.Errorf(".asciz wants name, \"text\"")
		}
		text := strings.Join(args[1:], ",")
		text = strings.TrimPrefix(strings.TrimSuffix(strings.TrimSpace(text), `"`), `"`)
		b.Asciz(args[0], text)
	case ".word":
		if len(args) < 2 {
			return fmt.Errorf(".word wants name, values")
		}
		var ws []uint32
		for _, a := range args[1:] {
			v, err := parseImm(a)
			if err != nil {
				return err
			}
			ws = append(ws, uint32(v))
		}
		b.DataWords(args[0], ws)
	default:
		return fmt.Errorf("unknown directive %s", dir)
	}
	return nil
}

func asmInst(b *Builder, op string, args []string) error {
	reg := func(i int) (uint8, error) {
		if i >= len(args) {
			return 0, fmt.Errorf("%s: missing operand %d", op, i)
		}
		r, ok := isa.RegByName(args[i])
		if !ok {
			return 0, fmt.Errorf("%s: bad register %q", op, args[i])
		}
		return r, nil
	}
	imm := func(i int) (int32, error) {
		if i >= len(args) {
			return 0, fmt.Errorf("%s: missing operand %d", op, i)
		}
		return parseImm(args[i])
	}
	memOperand := func(i int) (uint8, int32, error) {
		if i >= len(args) {
			return 0, 0, fmt.Errorf("%s: missing memory operand", op)
		}
		s := args[i]
		open := strings.IndexByte(s, '(')
		if open < 0 || !strings.HasSuffix(s, ")") {
			return 0, 0, fmt.Errorf("%s: want off(base), got %q", op, s)
		}
		off := int32(0)
		if o := strings.TrimSpace(s[:open]); o != "" {
			v, err := parseImm(o)
			if err != nil {
				return 0, 0, err
			}
			off = v
		}
		base, ok := isa.RegByName(strings.TrimSuffix(s[open+1:], ")"))
		if !ok {
			return 0, 0, fmt.Errorf("%s: bad base register in %q", op, s)
		}
		return base, off, nil
	}

	// Pseudo-instructions first.
	switch op {
	case "li":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		v, err := imm(1)
		if err != nil {
			return err
		}
		b.Li(rd, v)
		return nil
	case "la":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		if len(args) < 2 {
			return fmt.Errorf("la wants a symbol")
		}
		b.La(rd, args[1])
		return nil
	case "mv":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs, err := reg(1)
		if err != nil {
			return err
		}
		b.MV(rd, rs)
		return nil
	case "call":
		if len(args) != 1 {
			return fmt.Errorf("call wants a label")
		}
		b.Call(args[0])
		return nil
	case "j":
		if len(args) != 1 {
			return fmt.Errorf("j wants a label")
		}
		b.J(args[0])
		return nil
	case "ret":
		b.Ret()
		return nil
	case "nop":
		b.ADDI(isa.RegZero, isa.RegZero, 0)
		return nil
	}

	code, ok := isa.OpByName(op)
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", op)
	}
	switch isa.ClassOf(code) {
	case isa.ClassLoad:
		rd, err := reg(0)
		if err != nil {
			return err
		}
		if code == isa.OpLRW {
			base, _, err := memOperand(1)
			if err != nil {
				return err
			}
			b.LRW(rd, base)
			return nil
		}
		base, off, err := memOperand(1)
		if err != nil {
			return err
		}
		b.load(code, rd, base, off)
		return nil
	case isa.ClassStore:
		if code == isa.OpSCW {
			rd, err := reg(0)
			if err != nil {
				return err
			}
			src, err := reg(1)
			if err != nil {
				return err
			}
			base, _, err := memOperand(2)
			if err != nil {
				return err
			}
			b.SCW(rd, base, src)
			return nil
		}
		src, err := reg(0)
		if err != nil {
			return err
		}
		base, off, err := memOperand(1)
		if err != nil {
			return err
		}
		b.store(code, src, base, off)
		return nil
	case isa.ClassAtomic:
		rd, err := reg(0)
		if err != nil {
			return err
		}
		src, err := reg(1)
		if err != nil {
			return err
		}
		base, _, err := memOperand(2)
		if err != nil {
			return err
		}
		b.atomic(code, rd, base, src)
		return nil
	case isa.ClassBranch:
		r1, err := reg(0)
		if err != nil {
			return err
		}
		r2, err := reg(1)
		if err != nil {
			return err
		}
		if len(args) < 3 {
			return fmt.Errorf("%s: missing target", op)
		}
		b.branch(code, r1, r2, args[2])
		return nil
	case isa.ClassJump:
		if code == isa.OpJAL {
			rd, err := reg(0)
			if err != nil {
				return err
			}
			if len(args) < 2 {
				return fmt.Errorf("jal wants rd, label")
			}
			b.JAL(rd, args[1])
			return nil
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		base, off, err := memOperand(1)
		if err != nil {
			return err
		}
		b.JALR(rd, base, off)
		return nil
	}
	switch code {
	case isa.OpLUI, isa.OpAUIPC:
		rd, err := reg(0)
		if err != nil {
			return err
		}
		v, err := imm(1)
		if err != nil {
			return err
		}
		b.emit(isa.Inst{Op: code, Rd: rd, Imm: v})
		return nil
	case isa.OpHCALL, isa.OpECALL:
		n := int32(0)
		if len(args) > 0 {
			v, err := imm(0)
			if err != nil {
				return err
			}
			n = v
		}
		b.emit(isa.Inst{Op: code, Imm: n})
		return nil
	case isa.OpCSRR:
		rd, err := reg(0)
		if err != nil {
			return err
		}
		v, err := imm(1)
		if err != nil {
			return err
		}
		b.CSRR(rd, v)
		return nil
	case isa.OpCSRW:
		rs, err := reg(0)
		if err != nil {
			return err
		}
		v, err := imm(1)
		if err != nil {
			return err
		}
		b.CSRW(rs, v)
		return nil
	case isa.OpHALT, isa.OpEBREAK, isa.OpFENCE, isa.OpYIELD:
		b.emit(isa.Inst{Op: code})
		return nil
	}
	// Remaining ALU forms: reg,reg,reg or reg,reg,imm.
	rd, err := reg(0)
	if err != nil {
		return err
	}
	rs1, err := reg(1)
	if err != nil {
		return err
	}
	if len(args) < 3 {
		return fmt.Errorf("%s: missing operand", op)
	}
	if r2, ok := isa.RegByName(args[2]); ok {
		b.rrr(code, rd, rs1, r2)
		return nil
	}
	v, err := parseImm(args[2])
	if err != nil {
		return err
	}
	b.rri(code, rd, rs1, v)
	return nil
}

func parseImm(s string) (int32, error) {
	s = strings.TrimSpace(s)
	if len(s) == 3 && s[0] == '\'' && s[2] == '\'' {
		return int32(s[1]), nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if v < -(1<<31) || v > (1<<32)-1 {
		return 0, fmt.Errorf("immediate %q out of range", s)
	}
	return int32(uint32(v)), nil
}

// Disassemble renders an image's text section.
func Disassemble(img *Image) string {
	var b strings.Builder
	for pc := img.Base; pc < img.TextEnd(); pc += 4 {
		if fn, ok := img.FuncAt(pc); ok && fn.Addr == pc {
			fmt.Fprintf(&b, "%s:\n", fn.Name)
		}
		word := img.Arch.Word(img.Text[pc-img.Base:])
		in, err := isa.Decode(word, img.Arch)
		if err != nil {
			fmt.Fprintf(&b, "  %08x: .word %#08x\n", pc, word)
			continue
		}
		fmt.Fprintf(&b, "  %08x: %s\n", pc, isa.Disasm(in, pc))
	}
	return b.String()
}
