// Package kasm is the EVA32 firmware toolchain: a structured code builder,
// a two-pass text assembler, a linker, and the compile-time sanitizer
// instrumentation passes that produce EMBSAN-C and natively-sanitized
// firmware images.
//
// The builder is the primary interface — the guest operating systems in
// internal/guest are written against it — while the text assembler
// (cmd/evasm) parses classic assembly source into the same builder calls.
package kasm

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"sort"

	"embsan/internal/isa"
)

// SanitizeMode selects the compile-time instrumentation applied by the
// toolchain. It is a property of the *build*, matching the firmware
// categories of the paper: EMBSAN-D firmware is built with SanNone, while
// EMBSAN-C firmware is built with SanEmbsanC against the trapping dummy
// sanitizer library.
type SanitizeMode uint8

const (
	// SanNone builds plain firmware (the EMBSAN-D input).
	SanNone SanitizeMode = iota
	// SanEmbsanC inserts one trapping SANCK instruction before every memory
	// access and lays out redzones around global objects; allocator
	// annotations become hypercalls into the dummy sanitizer library.
	SanEmbsanC
	// SanNativeKASAN expands every memory access into an in-guest shadow
	// memory check (the reference KASAN baseline of the evaluation).
	SanNativeKASAN
	// SanNativeKCSAN expands every memory access into an in-guest
	// watchpoint check (the reference KCSAN baseline).
	SanNativeKCSAN
)

func (m SanitizeMode) String() string {
	switch m {
	case SanNone:
		return "none"
	case SanEmbsanC:
		return "embsan-c"
	case SanNativeKASAN:
		return "native-kasan"
	case SanNativeKCSAN:
		return "native-kcsan"
	}
	return fmt.Sprintf("sanmode%d", m)
}

// Reserved registers in sanitized builds. Code built with any mode other
// than SanNone must not use these; the builder enforces it.
var reservedRegs = [...]uint8{isa.RegK0, isa.RegK1, isa.RegK2}

// Names of the guest-side sanitizer runtime entry points that natively
// sanitized builds call. The glib guest library provides them.
const (
	SymKasanLoad1  = "__kasan_load1"
	SymKasanLoad2  = "__kasan_load2"
	SymKasanLoad4  = "__kasan_load4"
	SymKasanStore1 = "__kasan_store1"
	SymKasanStore2 = "__kasan_store2"
	SymKasanStore4 = "__kasan_store4"
	SymKcsanLoad   = "__kcsan_load"
	SymKcsanStore  = "__kcsan_store"

	// SymKasanGlobalTable is the compile-time-generated table of sanitized
	// global objects: count word followed by (addr, size, redzone) triples.
	SymKasanGlobalTable = "__kasan_global_table"
)

// GlobalRedzone is the redzone placed on each side of a global object in
// redzone-capable builds (EMBSAN-C and native KASAN).
const GlobalRedzone = 32

// SymKind distinguishes function from object symbols.
type SymKind uint8

const (
	SymFunc SymKind = iota
	SymObject
)

// Symbol is one linked symbol.
type Symbol struct {
	Name string
	Addr uint32
	Size uint32
	Kind SymKind
}

// GlobalMeta records a redzoned global object for the EMBSAN-C metadata
// side-channel (the host runtime poisons the redzones from it).
type GlobalMeta struct {
	Name    string
	Addr    uint32 // start of the object payload (after the left redzone)
	Size    uint32
	Redzone uint32
}

// AddrRange is a half-open address range [Start, End).
type AddrRange struct {
	Start uint32
	End   uint32
}

// Contains reports whether addr falls inside the range.
func (r AddrRange) Contains(addr uint32) bool { return addr >= r.Start && addr < r.End }

// Metadata is the build side-channel an EMBSAN-C build ships next to the
// image. EMBSAN-D firmware has none of this (that is the point).
type Metadata struct {
	Sanitize    SanitizeMode
	Globals     []GlobalMeta // redzoned globals (EMBSAN-C only)
	AllocFuncs  []string     // annotated allocator entry points
	FreeFuncs   []string
	ReadyMarked bool // the build contains a ready-to-run hypercall

	// NoSanRegions are the text ranges built under Builder.NoSan, i.e. with
	// compile-time instrumentation deliberately suppressed (allocator
	// internals, the sanitizer runtime itself). The static lint consults
	// them: memory accesses inside these ranges legitimately carry no SANCK.
	NoSanRegions []AddrRange

	// Elisions records every SANCK dropped by the link-time static-proof
	// pass (Image.ElideSancks), sorted by Site. `embsan lint -elide`
	// re-derives the proofs and audits this list.
	Elisions []Elision

	// RaceElisions records every access the lockset analysis proved
	// always-protected or hart-local, i.e. exempt from KCSAN sampling.
	// `embsan lint -races` re-derives the proofs and audits this list.
	RaceElisions []RaceElision
}

// RaceElision is one access site exempt from concurrency sampling by the
// static lockset proof.
type RaceElision struct {
	Site   uint32 // pc of the access instruction
	Kind   string // "protected" or "hart-local"
	Object string // the proven-safe object the access targets
}

// InNoSan reports whether addr lies in a recorded NoSan region.
func (m *Metadata) InNoSan(addr uint32) bool {
	for _, r := range m.NoSanRegions {
		if r.Contains(addr) {
			return true
		}
	}
	return false
}

// Image is a linked firmware image.
type Image struct {
	Name     string
	Arch     isa.Arch
	Base     uint32 // load address of the text section
	Entry    uint32
	Text     []byte // encoded instructions
	Data     []byte // initialised data, loaded at DataAddr
	DataAddr uint32
	BSSAddr  uint32
	BSSSize  uint32
	Symbols  []Symbol // sorted by Addr; nil for stripped (closed-source) images
	Meta     Metadata
	Stripped bool
}

// TextEnd returns the first address past the text section.
func (img *Image) TextEnd() uint32 { return img.Base + uint32(len(img.Text)) }

// MemTop returns the first address past everything the image occupies.
func (img *Image) MemTop() uint32 { return img.BSSAddr + img.BSSSize }

// ContentID digests exactly what an instruction translator reads from the
// image: the architecture, the text load address and the text bytes. Link-
// time rewrites (SANCK elision) change Text, so elided and plain builds get
// distinct IDs; names, symbols and data do not participate, so a stripped
// copy of the same build shares its translations.
func (img *Image) ContentID() string {
	h := sha256.New()
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(img.Arch))
	binary.LittleEndian.PutUint32(hdr[4:], img.Base)
	h.Write(hdr[:])
	h.Write(img.Text)
	return hex.EncodeToString(h.Sum(nil))
}

// Strip returns a copy of the image with all symbol information removed,
// modelling closed-source binary-only firmware distribution.
func (img *Image) Strip() *Image {
	out := *img
	out.Symbols = nil
	out.Stripped = true
	out.Meta = Metadata{Sanitize: img.Meta.Sanitize}
	return &out
}

// Lookup returns the symbol with the given name.
func (img *Image) Lookup(name string) (Symbol, bool) {
	for _, s := range img.Symbols {
		if s.Name == name {
			return s, true
		}
	}
	return Symbol{}, false
}

// Symbolize resolves addr to "name+0xoff" form, or a raw hex address for
// stripped images — which is exactly how reports from closed firmware look.
func (img *Image) Symbolize(addr uint32) string {
	i := sort.Search(len(img.Symbols), func(i int) bool {
		return img.Symbols[i].Addr > addr
	})
	for j := i - 1; j >= 0; j-- {
		s := img.Symbols[j]
		if addr >= s.Addr && (s.Size == 0 || addr < s.Addr+s.Size) {
			if addr == s.Addr {
				return s.Name
			}
			return fmt.Sprintf("%s+%#x", s.Name, addr-s.Addr)
		}
		if s.Size != 0 {
			break
		}
	}
	return fmt.Sprintf("%#08x", addr)
}

// FuncAt returns the function symbol containing addr.
func (img *Image) FuncAt(addr uint32) (Symbol, bool) {
	i := sort.Search(len(img.Symbols), func(i int) bool {
		return img.Symbols[i].Addr > addr
	})
	for j := i - 1; j >= 0; j-- {
		s := img.Symbols[j]
		if s.Kind == SymFunc && addr >= s.Addr && addr < s.Addr+s.Size {
			return s, true
		}
	}
	return Symbol{}, false
}

// Encode serialises the image (gob).
func (img *Image) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(img); err != nil {
		return nil, fmt.Errorf("kasm: encode image: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeImage deserialises an image produced by Encode.
func DecodeImage(b []byte) (*Image, error) {
	var img Image
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&img); err != nil {
		return nil, fmt.Errorf("kasm: decode image: %w", err)
	}
	return &img, nil
}
