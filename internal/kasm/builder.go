package kasm

import (
	"fmt"

	"embsan/internal/isa"
)

// Target describes the build target.
type Target struct {
	Arch     isa.Arch
	Sanitize SanitizeMode
	Base     uint32 // text load address; defaults to 0x1000
}

// DefaultBase is the text load address used when Target.Base is zero. The
// page below it is never mapped by any firmware, giving every build a NULL
// guard page.
const DefaultBase = 0x1000

type fixKind uint8

const (
	fixNone   fixKind = iota
	fixBranch         // imm = (target - pc) / 4, imm12
	fixJAL            // imm = (target - pc) / 4, imm20
	fixHi             // imm = %hi(sym)
	fixLo             // imm = %lo(sym)
	fixPCHi           // imm = %pcrel_hi(sym): auipc-relative high part
	fixPCLo           // imm = %pcrel_lo(sym): low part against the auipc at pc-4
)

type centry struct {
	inst isa.Inst
	fix  fixKind
	sym  string
}

type dataKind uint8

const (
	dataBSS dataKind = iota
	dataInit
)

type dsym struct {
	name     string
	kind     dataKind
	size     uint32
	align    uint32
	init     []byte
	wordSyms map[uint32]string // offset -> symbol whose address to store
	relSyms  map[uint32]string // offset -> symbol; stores addr(sym)-addr(table)
	redzone  bool
	addr     uint32
}

type fsym struct {
	name  string
	start int // code index
	end   int
}

// Builder assembles a firmware image through direct emission calls. It is
// the structured equivalent of writing assembly source: every method call
// appends instructions or data, and Link resolves symbols and produces the
// image. Errors accumulate and are reported by Link, so call sites stay
// uncluttered.
type Builder struct {
	target      Target
	code        []centry
	labels      map[string]int // label -> code index
	funcs       []*fsym
	data        []*dsym
	dataIdx     map[string]*dsym
	nosan       int
	nosanRanges []codeRange // code-index ranges built under NoSan
	allowRes    int
	uniq        int
	errs        []error
	meta        Metadata
}

// codeRange is a half-open range of code indices, [start, end).
type codeRange struct {
	start, end int
}

// NewBuilder returns a builder for the given target.
func NewBuilder(t Target) *Builder {
	if t.Base == 0 {
		t.Base = DefaultBase
	}
	return &Builder{
		target:  t,
		labels:  make(map[string]int),
		dataIdx: make(map[string]*dsym),
		meta:    Metadata{Sanitize: t.Sanitize},
	}
}

// Target returns the build target.
func (b *Builder) Target() Target { return b.target }

// Mode returns the sanitize mode of the build.
func (b *Builder) Mode() SanitizeMode { return b.target.Sanitize }

func (b *Builder) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// Unique returns a fresh label name with the given prefix.
func (b *Builder) Unique(prefix string) string {
	b.uniq++
	return fmt.Sprintf(".%s.%d", prefix, b.uniq)
}

// Func starts a new function symbol at the current position.
func (b *Builder) Func(name string) {
	b.closeFunc()
	if _, dup := b.labels[name]; dup {
		b.errf("kasm: duplicate symbol %q", name)
	}
	b.labels[name] = len(b.code)
	b.funcs = append(b.funcs, &fsym{name: name, start: len(b.code)})
}

func (b *Builder) closeFunc() {
	if n := len(b.funcs); n > 0 && b.funcs[n-1].end == 0 {
		b.funcs[n-1].end = len(b.code)
	}
}

// Label defines a local code label at the current position.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errf("kasm: duplicate label %q", name)
	}
	b.labels[name] = len(b.code)
}

// NoSan runs fn with compile-time instrumentation suppressed — used for
// allocator internals and the sanitizer runtime itself, mirroring the
// __no_sanitize annotations real kernels carry.
func (b *Builder) NoSan(fn func()) {
	if b.nosan == 0 {
		b.nosanRanges = append(b.nosanRanges, codeRange{start: len(b.code)})
	}
	b.nosan++
	fn()
	b.nosan--
	if b.nosan == 0 {
		b.nosanRanges[len(b.nosanRanges)-1].end = len(b.code)
	}
}

// AllowReserved runs fn with the reserved-register check disabled. Only the
// guest sanitizer runtime may use it.
func (b *Builder) AllowReserved(fn func()) {
	b.allowRes++
	fn()
	b.allowRes--
}

func (b *Builder) checkRegs(inst isa.Inst) {
	if b.target.Sanitize == SanNone || b.allowRes > 0 {
		return
	}
	use := func(r uint8) {
		for _, res := range reservedRegs {
			if r == res {
				b.errf("kasm: register %s is reserved under %s (inst %s)",
					isa.RegName(r), b.target.Sanitize, inst.Op.Name())
			}
		}
	}
	use(inst.Rd)
	if !isUFormat(inst.Op) {
		use(inst.Rs1)
		use(inst.Rs2)
	}
}

func (b *Builder) emit(inst isa.Inst) {
	b.checkRegs(inst)
	b.code = append(b.code, centry{inst: inst})
}

func (b *Builder) emitFix(inst isa.Inst, fix fixKind, sym string) {
	b.checkRegs(inst)
	b.code = append(b.code, centry{inst: inst, fix: fix, sym: sym})
}

// emitRaw bypasses the reserved-register check (instrumentation internals).
func (b *Builder) emitRaw(inst isa.Inst) {
	b.code = append(b.code, centry{inst: inst})
}

func (b *Builder) emitRawFix(inst isa.Inst, fix fixKind, sym string) {
	b.code = append(b.code, centry{inst: inst, fix: fix, sym: sym})
}

// ---- ALU ----

func (b *Builder) rrr(op isa.Op, rd, rs1, rs2 uint8) {
	b.emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}
func (b *Builder) rri(op isa.Op, rd, rs1 uint8, imm int32) {
	b.emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

func (b *Builder) ADD(rd, rs1, rs2 uint8)   { b.rrr(isa.OpADD, rd, rs1, rs2) }
func (b *Builder) SUB(rd, rs1, rs2 uint8)   { b.rrr(isa.OpSUB, rd, rs1, rs2) }
func (b *Builder) AND(rd, rs1, rs2 uint8)   { b.rrr(isa.OpAND, rd, rs1, rs2) }
func (b *Builder) OR(rd, rs1, rs2 uint8)    { b.rrr(isa.OpOR, rd, rs1, rs2) }
func (b *Builder) XOR(rd, rs1, rs2 uint8)   { b.rrr(isa.OpXOR, rd, rs1, rs2) }
func (b *Builder) SLL(rd, rs1, rs2 uint8)   { b.rrr(isa.OpSLL, rd, rs1, rs2) }
func (b *Builder) SRL(rd, rs1, rs2 uint8)   { b.rrr(isa.OpSRL, rd, rs1, rs2) }
func (b *Builder) SRA(rd, rs1, rs2 uint8)   { b.rrr(isa.OpSRA, rd, rs1, rs2) }
func (b *Builder) MUL(rd, rs1, rs2 uint8)   { b.rrr(isa.OpMUL, rd, rs1, rs2) }
func (b *Builder) MULHU(rd, rs1, rs2 uint8) { b.rrr(isa.OpMULHU, rd, rs1, rs2) }
func (b *Builder) DIV(rd, rs1, rs2 uint8)   { b.rrr(isa.OpDIV, rd, rs1, rs2) }
func (b *Builder) DIVU(rd, rs1, rs2 uint8)  { b.rrr(isa.OpDIVU, rd, rs1, rs2) }
func (b *Builder) REM(rd, rs1, rs2 uint8)   { b.rrr(isa.OpREM, rd, rs1, rs2) }
func (b *Builder) REMU(rd, rs1, rs2 uint8)  { b.rrr(isa.OpREMU, rd, rs1, rs2) }
func (b *Builder) SLT(rd, rs1, rs2 uint8)   { b.rrr(isa.OpSLT, rd, rs1, rs2) }
func (b *Builder) SLTU(rd, rs1, rs2 uint8)  { b.rrr(isa.OpSLTU, rd, rs1, rs2) }

func (b *Builder) ADDI(rd, rs1 uint8, imm int32)  { b.rri(isa.OpADDI, rd, rs1, imm) }
func (b *Builder) ANDI(rd, rs1 uint8, imm int32)  { b.rri(isa.OpANDI, rd, rs1, imm) }
func (b *Builder) ORI(rd, rs1 uint8, imm int32)   { b.rri(isa.OpORI, rd, rs1, imm) }
func (b *Builder) XORI(rd, rs1 uint8, imm int32)  { b.rri(isa.OpXORI, rd, rs1, imm) }
func (b *Builder) SLLI(rd, rs1 uint8, imm int32)  { b.rri(isa.OpSLLI, rd, rs1, imm) }
func (b *Builder) SRLI(rd, rs1 uint8, imm int32)  { b.rri(isa.OpSRLI, rd, rs1, imm) }
func (b *Builder) SRAI(rd, rs1 uint8, imm int32)  { b.rri(isa.OpSRAI, rd, rs1, imm) }
func (b *Builder) SLTI(rd, rs1 uint8, imm int32)  { b.rri(isa.OpSLTI, rd, rs1, imm) }
func (b *Builder) SLTIU(rd, rs1 uint8, imm int32) { b.rri(isa.OpSLTIU, rd, rs1, imm) }

func (b *Builder) LUI(rd uint8, imm20 int32) { b.emit(isa.Inst{Op: isa.OpLUI, Rd: rd, Imm: imm20}) }

// AUIPC adds imm20<<12 to the instruction's own address.
func (b *Builder) AUIPC(rd uint8, imm20 int32) {
	b.emit(isa.Inst{Op: isa.OpAUIPC, Rd: rd, Imm: imm20})
}

// MV copies rs into rd.
func (b *Builder) MV(rd, rs uint8) { b.ADDI(rd, rs, 0) }

// Li loads a 32-bit constant into rd (one or two instructions).
func (b *Builder) Li(rd uint8, v int32) {
	hi, lo := splitConst(uint32(v))
	if hi == 0 {
		b.ADDI(rd, isa.RegZero, lo)
		return
	}
	b.LUI(rd, hi)
	if lo != 0 {
		b.ADDI(rd, rd, lo)
	}
}

// La loads the address of sym into rd (resolved at link time).
func (b *Builder) La(rd uint8, sym string) {
	b.checkRegs(isa.Inst{Op: isa.OpLUI, Rd: rd})
	b.emitRawFix(isa.Inst{Op: isa.OpLUI, Rd: rd}, fixHi, sym)
	b.emitRawFix(isa.Inst{Op: isa.OpADDI, Rd: rd, Rs1: rd}, fixLo, sym)
}

// LaPC loads the address of sym into rd PC-relatively (auipc+addi), the
// position-independent idiom the arm32e/x86e toolchains favour over La's
// absolute lui+addi pair.
func (b *Builder) LaPC(rd uint8, sym string) {
	b.checkRegs(isa.Inst{Op: isa.OpAUIPC, Rd: rd})
	b.emitRawFix(isa.Inst{Op: isa.OpAUIPC, Rd: rd}, fixPCHi, sym)
	b.emitRawFix(isa.Inst{Op: isa.OpADDI, Rd: rd, Rs1: rd}, fixPCLo, sym)
}

// splitConst splits v into %hi/%lo parts such that (hi<<12)+signext(lo) == v.
func splitConst(v uint32) (hi, lo int32) {
	h := (v + 0x800) >> 12
	l := int32(v) - int32(h<<12)
	return int32(h & 0xFFFFF), l
}

// ---- memory (instrumented) ----

// LB/LBU/LH/LHU/LW load from off(base) into rd.
func (b *Builder) LB(rd, base uint8, off int32)  { b.load(isa.OpLB, rd, base, off) }
func (b *Builder) LBU(rd, base uint8, off int32) { b.load(isa.OpLBU, rd, base, off) }
func (b *Builder) LH(rd, base uint8, off int32)  { b.load(isa.OpLH, rd, base, off) }
func (b *Builder) LHU(rd, base uint8, off int32) { b.load(isa.OpLHU, rd, base, off) }
func (b *Builder) LW(rd, base uint8, off int32)  { b.load(isa.OpLW, rd, base, off) }

// SB/SH/SW store src to off(base).
func (b *Builder) SB(src, base uint8, off int32) { b.store(isa.OpSB, src, base, off) }
func (b *Builder) SH(src, base uint8, off int32) { b.store(isa.OpSH, src, base, off) }
func (b *Builder) SW(src, base uint8, off int32) { b.store(isa.OpSW, src, base, off) }

// Atomics: address in addrReg (no offset).
func (b *Builder) AMOADDW(rd, addrReg, src uint8)  { b.atomic(isa.OpAMOADDW, rd, addrReg, src) }
func (b *Builder) AMOSWAPW(rd, addrReg, src uint8) { b.atomic(isa.OpAMOSWAPW, rd, addrReg, src) }
func (b *Builder) AMOORW(rd, addrReg, src uint8)   { b.atomic(isa.OpAMOORW, rd, addrReg, src) }
func (b *Builder) AMOANDW(rd, addrReg, src uint8)  { b.atomic(isa.OpAMOANDW, rd, addrReg, src) }
func (b *Builder) LRW(rd, addrReg uint8)           { b.amoLoad(isa.OpLRW, rd, addrReg) }
func (b *Builder) SCW(rd, addrReg, src uint8)      { b.atomic(isa.OpSCW, rd, addrReg, src) }

// ---- control flow ----

func (b *Builder) branch(op isa.Op, rs1, rs2 uint8, label string) {
	b.emitFix(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2}, fixBranch, label)
}

func (b *Builder) BEQ(rs1, rs2 uint8, label string)  { b.branch(isa.OpBEQ, rs1, rs2, label) }
func (b *Builder) BNE(rs1, rs2 uint8, label string)  { b.branch(isa.OpBNE, rs1, rs2, label) }
func (b *Builder) BLT(rs1, rs2 uint8, label string)  { b.branch(isa.OpBLT, rs1, rs2, label) }
func (b *Builder) BGE(rs1, rs2 uint8, label string)  { b.branch(isa.OpBGE, rs1, rs2, label) }
func (b *Builder) BLTU(rs1, rs2 uint8, label string) { b.branch(isa.OpBLTU, rs1, rs2, label) }
func (b *Builder) BGEU(rs1, rs2 uint8, label string) { b.branch(isa.OpBGEU, rs1, rs2, label) }
func (b *Builder) BEQZ(rs1 uint8, label string)      { b.BEQ(rs1, isa.RegZero, label) }
func (b *Builder) BNEZ(rs1 uint8, label string)      { b.BNE(rs1, isa.RegZero, label) }

// JAL jumps to label, writing the return address to rd.
func (b *Builder) JAL(rd uint8, label string) {
	b.emitFix(isa.Inst{Op: isa.OpJAL, Rd: rd}, fixJAL, label)
}

// J is an unconditional jump.
func (b *Builder) J(label string) { b.JAL(isa.RegZero, label) }

// Call calls label with the standard link register.
func (b *Builder) Call(label string) { b.JAL(isa.RegRA, label) }

// JALR is an indirect jump.
func (b *Builder) JALR(rd, rs1 uint8, imm int32) {
	b.emit(isa.Inst{Op: isa.OpJALR, Rd: rd, Rs1: rs1, Imm: imm})
}

// Ret returns via ra.
func (b *Builder) Ret() { b.JALR(isa.RegZero, isa.RegRA, 0) }

// ---- system ----

func (b *Builder) HCALL(n int32)            { b.emit(isa.Inst{Op: isa.OpHCALL, Imm: n}) }
func (b *Builder) ECALL()                   { b.emit(isa.Inst{Op: isa.OpECALL}) }
func (b *Builder) EBREAK()                  { b.emit(isa.Inst{Op: isa.OpEBREAK}) }
func (b *Builder) HALT()                    { b.emit(isa.Inst{Op: isa.OpHALT}) }
func (b *Builder) FENCE()                   { b.emit(isa.Inst{Op: isa.OpFENCE}) }
func (b *Builder) YIELD()                   { b.emit(isa.Inst{Op: isa.OpYIELD}) }
func (b *Builder) CSRR(rd uint8, csr int32) { b.rri(isa.OpCSRR, rd, isa.RegZero, csr) }
func (b *Builder) CSRW(rs1 uint8, csr int32) {
	b.emit(isa.Inst{Op: isa.OpCSRW, Rs1: rs1, Imm: csr})
}

// Prologue opens a stack frame of the given size and saves ra.
func (b *Builder) Prologue(frame int32) {
	b.ADDI(isa.RegSP, isa.RegSP, -frame)
	b.SW(isa.RegRA, isa.RegSP, frame-4)
}

// Epilogue restores ra, closes the frame and returns.
func (b *Builder) Epilogue(frame int32) {
	b.LW(isa.RegRA, isa.RegSP, frame-4)
	b.ADDI(isa.RegSP, isa.RegSP, frame)
	b.Ret()
}

// ---- sanitizer annotations (guest allocator cooperation) ----

// hookCall calls an in-guest sanitizer runtime entry point from arbitrary
// code, preserving the caller's return address — hook sites are often in
// leaf functions that keep ra live.
func (b *Builder) hookCall(sym string) {
	b.ADDI(isa.RegSP, isa.RegSP, -8)
	b.SW(isa.RegRA, isa.RegSP, 4)
	b.Call(sym)
	b.LW(isa.RegRA, isa.RegSP, 4)
	b.ADDI(isa.RegSP, isa.RegSP, 8)
}

// SanAllocHook records an allocation (convention: a0 = ptr, a1 = size).
// Under EMBSAN-C it traps into the dummy sanitizer library; under native
// KASAN it calls the in-guest runtime; otherwise it emits nothing, leaving
// discovery to the Prober.
func (b *Builder) SanAllocHook() {
	switch b.target.Sanitize {
	case SanEmbsanC:
		b.HCALL(isa.HcallSanAlloc)
	case SanNativeKASAN:
		b.hookCall("__kasan_alloc")
	}
}

// SanFreeHook records a deallocation (convention: a0 = ptr, a1 = size).
func (b *Builder) SanFreeHook() {
	switch b.target.Sanitize {
	case SanEmbsanC:
		b.HCALL(isa.HcallSanFree)
	case SanNativeKASAN:
		b.hookCall("__kasan_free")
	}
}

// SanPoisonHook marks a region with a poison code (convention: a0 = addr,
// a1 = size; the code is emitted as an immediate into a2). Guest allocators
// use it to hand their heap arena to the sanitizer at init time. Under
// EMBSAN-C it traps into the dummy library; under native KASAN it calls the
// in-guest runtime; otherwise it emits nothing.
func (b *Builder) SanPoisonHook(code int32) {
	switch b.target.Sanitize {
	case SanEmbsanC:
		b.Li(isa.RegA2, code)
		b.HCALL(isa.HcallSanPoison)
	case SanNativeKASAN:
		b.Li(isa.RegA2, code)
		b.hookCall("__kasan_poison")
	}
}

// GuardedBuffer materialises the address of a stack buffer that lives at
// sp+bufOff inside the current frame, and — in redzone-capable builds —
// poisons 16-byte redzones on both sides of it, the way compile-time
// instrumentation guards on-stack objects. The caller must reserve
// [bufOff-16, bufOff+bufSize+16) inside the frame and call UnguardBuffer
// on every exit path, or stale stack poison will misfire later.
//
// The guard sequence spills a0..a2 around the poison calls, mirroring the
// register pressure real instrumented prologues pay; uninstrumented builds
// emit a single address computation.
func (b *Builder) GuardedBuffer(bufOff, bufSize int32, reg uint8) {
	b.stackGuard(bufOff, bufSize, false)
	b.ADDI(reg, isa.RegSP, bufOff)
}

// UnguardBuffer removes the redzones laid down by GuardedBuffer. Call it
// before closing the frame.
func (b *Builder) UnguardBuffer(bufOff, bufSize int32) {
	b.stackGuard(bufOff, bufSize, true)
}

func (b *Builder) stackGuard(bufOff, bufSize int32, clear bool) {
	mode := b.target.Sanitize
	if mode != SanEmbsanC && mode != SanNativeKASAN {
		return
	}
	if bufOff < 16 {
		b.errf("kasm: GuardedBuffer needs bufOff >= 16 for the left redzone")
		return
	}
	const rz = 16
	poison := func(off, size int32, code int32) {
		b.ADDI(isa.RegA0, isa.RegSP, 16+off) // account for the spill area
		b.Li(isa.RegA1, size)
		if clear {
			if mode == SanEmbsanC {
				b.HCALL(isa.HcallSanUnpoison)
			} else {
				b.hookCall(SymKasanUnpoison)
			}
			return
		}
		b.Li(isa.RegA2, code)
		if mode == SanEmbsanC {
			b.HCALL(isa.HcallSanPoison)
		} else {
			b.hookCall("__kasan_poison")
		}
	}
	b.ADDI(isa.RegSP, isa.RegSP, -16)
	b.SW(isa.RegA0, isa.RegSP, 0)
	b.SW(isa.RegA1, isa.RegSP, 4)
	b.SW(isa.RegA2, isa.RegSP, 8)
	if clear {
		poison(bufOff-rz, rz+bufSize+rz, 0)
	} else {
		poison(bufOff-rz, rz, stackRedzoneCode)
		poison(bufOff+bufSize, rz, stackRedzoneCode)
	}
	b.LW(isa.RegA0, isa.RegSP, 0)
	b.LW(isa.RegA1, isa.RegSP, 4)
	b.LW(isa.RegA2, isa.RegSP, 8)
	b.ADDI(isa.RegSP, isa.RegSP, 16)
}

// stackRedzoneCode mirrors san.CodeStackRedzone without importing san.
const stackRedzoneCode = 0xF8

// SymKasanUnpoison names the in-guest unpoison entry point.
const SymKasanUnpoison = "__kasan_unpoison"

// SanMemcpyHook is the range interceptor for memcpy-like routines
// (convention: a0 = dst, a1 = src, a2 = len), mirroring __asan_memcpy.
func (b *Builder) SanMemcpyHook() {
	switch b.target.Sanitize {
	case SanEmbsanC:
		b.HCALL(isa.HcallSanMemcpy)
	case SanNativeKASAN:
		b.hookCall("__kasan_memcpy_check")
	}
}

// SanMemsetHook is the range interceptor for memset-like routines
// (convention: a0 = dst, a1 = val, a2 = len).
func (b *Builder) SanMemsetHook() {
	switch b.target.Sanitize {
	case SanEmbsanC:
		b.HCALL(isa.HcallSanMemset)
	case SanNativeKASAN:
		b.hookCall("__kasan_memset_check")
	}
}

// MarkAlloc annotates fn as an allocator entry point in the build metadata.
func (b *Builder) MarkAlloc(fn string) { b.meta.AllocFuncs = append(b.meta.AllocFuncs, fn) }

// MarkFree annotates fn as a deallocator entry point.
func (b *Builder) MarkFree(fn string) { b.meta.FreeFuncs = append(b.meta.FreeFuncs, fn) }

// Ready emits the ready-to-run hypercall that separates the boot phase from
// the testing phase.
func (b *Builder) Ready() {
	b.HCALL(isa.HcallReady)
	b.meta.ReadyMarked = true
}

// ---- data ----

func (b *Builder) defData(d *dsym) *dsym {
	if _, dup := b.dataIdx[d.name]; dup {
		b.errf("kasm: duplicate data symbol %q", d.name)
		return d
	}
	if d.align == 0 {
		d.align = 4
	}
	b.data = append(b.data, d)
	b.dataIdx[d.name] = d
	return d
}

// Global reserves a zero-initialised object. In redzone-capable builds it is
// surrounded by redzones (and recorded in the build metadata / the in-guest
// global table).
func (b *Builder) Global(name string, size uint32) {
	rz := b.target.Sanitize == SanEmbsanC || b.target.Sanitize == SanNativeKASAN
	b.defData(&dsym{name: name, kind: dataBSS, size: size, redzone: rz})
}

// GlobalRaw reserves a zero-initialised object with no redzones regardless
// of build mode — for allocator heaps, stacks and shadow regions, which are
// not objects in the sanitizer sense.
func (b *Builder) GlobalRaw(name string, size uint32) {
	b.defData(&dsym{name: name, kind: dataBSS, size: size})
}

// GlobalAlign is GlobalRaw with an explicit alignment.
func (b *Builder) GlobalAlign(name string, size, align uint32) {
	b.defData(&dsym{name: name, kind: dataBSS, size: size, align: align})
}

// DataBytes defines an initialised byte object.
func (b *Builder) DataBytes(name string, bs []byte) {
	b.defData(&dsym{name: name, kind: dataInit, size: uint32(len(bs)), init: bs})
}

// Asciz defines a NUL-terminated string object.
func (b *Builder) Asciz(name, s string) {
	b.DataBytes(name, append([]byte(s), 0))
}

// DataWords defines an initialised word array.
func (b *Builder) DataWords(name string, ws []uint32) {
	bs := make([]byte, 4*len(ws))
	for i, w := range ws {
		b.target.Arch.PutWord(bs[4*i:], w)
	}
	b.defData(&dsym{name: name, kind: dataInit, size: uint32(len(bs)), init: bs})
}

// DataWordSyms defines a pointer table: each entry is the link-time address
// of the named symbol (the mechanism behind guest syscall tables).
func (b *Builder) DataWordSyms(name string, syms []string) {
	d := &dsym{
		name:     name,
		kind:     dataInit,
		size:     uint32(4 * len(syms)),
		init:     make([]byte, 4*len(syms)),
		wordSyms: make(map[uint32]string, len(syms)),
	}
	for i, s := range syms {
		d.wordSyms[uint32(4*i)] = s
	}
	b.defData(d)
}

// DataWordRel defines a self-relative word table: each entry stores
// addr(sym) - addr(table), the position-independent jump-table layout
// PC-relative toolchains emit. Consumers recover a target by adding the
// table base to the entry modulo 2^32.
func (b *Builder) DataWordRel(name string, syms []string) {
	d := &dsym{
		name:    name,
		kind:    dataInit,
		size:    uint32(4 * len(syms)),
		init:    make([]byte, 4*len(syms)),
		relSyms: make(map[uint32]string, len(syms)),
	}
	for i, s := range syms {
		d.relSyms[uint32(4*i)] = s
	}
	b.defData(d)
}

func isUFormat(op isa.Op) bool {
	return op == isa.OpLUI || op == isa.OpAUIPC || op == isa.OpJAL
}
