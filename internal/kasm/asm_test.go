package kasm

import (
	"strings"
	"testing"

	"embsan/internal/isa"
)

const asmProgram = `
; A small program exercising the assembler surface.
.globalraw stack, 1024
.global table, 16
.asciz banner, "ok"
.word consts, 1, 2, 0x30

.func _start
  la sp, stack
  li t0, 1000
  addi sp, sp, 1020
  li a0, 5
  li a1, 7
  call sum2
  la t0, table
  sw a0, 0(t0)
  lw a1, 0(t0)
  beq a0, a1, good
  li a0, 1
  hcall 1
good:
  li a0, 0
  hcall 1
  halt

.func sum2
  add a0, a0, a1
  ret
`

func TestAssembleAndLink(t *testing.T) {
	img, err := Assemble(asmProgram, Target{Arch: isa.ArchARM32E})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if _, ok := img.Lookup("sum2"); !ok {
		t.Error("missing sum2 symbol")
	}
	if s, ok := img.Lookup("banner"); !ok || s.Size != 3 {
		t.Errorf("banner = %+v, %v", s, ok)
	}
	if s, ok := img.Lookup("consts"); !ok || s.Size != 12 {
		t.Errorf("consts = %+v, %v", s, ok)
	}
	// The same source assembles for every frontend with distinct encodings.
	img2, err := Assemble(asmProgram, Target{Arch: isa.ArchMIPS32E})
	if err != nil {
		t.Fatal(err)
	}
	if string(img.Text[:8]) == string(img2.Text[:8]) {
		t.Error("frontends produced identical encodings")
	}
}

func TestAssembleInstrumented(t *testing.T) {
	plain, err := Assemble(asmProgram, Target{Arch: isa.ArchARM32E})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Assemble(asmProgram, Target{Arch: isa.ArchARM32E, Sanitize: SanEmbsanC})
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Text) <= len(plain.Text) {
		t.Error("EMBSAN-C assembly did not grow the text section")
	}
	if len(inst.Meta.Globals) != 1 {
		t.Errorf("redzoned globals = %+v", inst.Meta.Globals)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus a0, a1",
		"lw a0, nooffset",
		"addi a0",
		".func",
		".global only_name",
		"li a0, zzz",
		"beq a0, a1",
		"lw q9, 0(sp)",
	}
	for _, src := range cases {
		if _, err := Assemble(".func _start\n"+src, Target{Arch: isa.ArchARM32E}); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	img, err := Assemble(asmProgram, Target{Arch: isa.ArchARM32E})
	if err != nil {
		t.Fatal(err)
	}
	dis := Disassemble(img)
	for _, want := range []string{"_start:", "sum2:", "add a0, a0, a1", "hcall 1", "halt"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestParseImm(t *testing.T) {
	cases := map[string]int32{
		"0":    0,
		"-8":   -8,
		"0x10": 16,
		"'A'":  65,
		"4096": 4096,
	}
	for in, want := range cases {
		got, err := parseImm(in)
		if err != nil || got != want {
			t.Errorf("parseImm(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	if _, err := parseImm("zzz"); err == nil {
		t.Error("bad immediate accepted")
	}
}
