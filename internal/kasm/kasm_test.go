package kasm

import (
	"strings"
	"testing"

	"embsan/internal/isa"
)

func buildTrivial(t *testing.T, mode SanitizeMode) *Image {
	t.Helper()
	b := NewBuilder(Target{Arch: isa.ArchARM32E, Sanitize: mode})
	b.GlobalRaw("stack", 4096)
	b.Global("buf", 64)
	b.Func("_start")
	b.La(isa.RegSP, "stack")
	b.ADDI(isa.RegSP, isa.RegSP, 2047)
	b.La(isa.RegA0, "buf")
	b.Li(isa.RegA1, 0x1234)
	b.SW(isa.RegA1, isa.RegA0, 0)
	b.LW(isa.RegA2, isa.RegA0, 0)
	b.HALT()
	img, err := b.Link("trivial")
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return img
}

func TestLinkBasics(t *testing.T) {
	img := buildTrivial(t, SanNone)
	if img.Entry != img.Base {
		t.Errorf("entry %#x != base %#x", img.Entry, img.Base)
	}
	if len(img.Text)%4 != 0 || len(img.Text) == 0 {
		t.Errorf("bad text size %d", len(img.Text))
	}
	s, ok := img.Lookup("buf")
	if !ok || s.Size != 64 || s.Kind != SymObject {
		t.Fatalf("buf symbol: %+v ok=%v", s, ok)
	}
	if s.Addr%4 != 0 {
		t.Errorf("buf misaligned: %#x", s.Addr)
	}
	f, ok := img.Lookup("_start")
	if !ok || f.Kind != SymFunc || f.Size == 0 {
		t.Fatalf("_start symbol: %+v ok=%v", f, ok)
	}
}

func TestRedzonesOnlyInCapableModes(t *testing.T) {
	plain := buildTrivial(t, SanNone)
	if len(plain.Meta.Globals) != 0 {
		t.Errorf("SanNone build has redzone metadata: %+v", plain.Meta.Globals)
	}
	cimg := buildTrivial(t, SanEmbsanC)
	if len(cimg.Meta.Globals) != 1 {
		t.Fatalf("EMBSAN-C build wants 1 redzoned global, got %+v", cimg.Meta.Globals)
	}
	g := cimg.Meta.Globals[0]
	if g.Name != "buf" || g.Size != 64 || g.Redzone != GlobalRedzone {
		t.Errorf("bad global meta: %+v", g)
	}
	// The raw stack must not be redzoned.
	for _, gm := range cimg.Meta.Globals {
		if gm.Name == "stack" {
			t.Error("GlobalRaw object got a redzone")
		}
	}
}

func TestInstrumentationModesEmitDifferentCode(t *testing.T) {
	plain := buildTrivial(t, SanNone)
	cimg := buildTrivial(t, SanEmbsanC)
	if len(cimg.Text) <= len(plain.Text) {
		t.Errorf("EMBSAN-C text (%d) not larger than plain (%d)", len(cimg.Text), len(plain.Text))
	}
	// EMBSAN-C adds exactly one SANCK per memory access (2 accesses here).
	var sancks int
	for i := 0; i < len(cimg.Text); i += 4 {
		w := isa.ArchARM32E.Word(cimg.Text[i:])
		if in, err := isa.Decode(w, isa.ArchARM32E); err == nil && in.Op == isa.OpSANCK {
			sancks++
		}
	}
	if sancks != 2 {
		t.Errorf("EMBSAN-C emitted %d SANCKs, want 2", sancks)
	}
}

func TestNativeKASANNeedsRuntimeSymbols(t *testing.T) {
	b := NewBuilder(Target{Arch: isa.ArchARM32E, Sanitize: SanNativeKASAN})
	b.Func("_start")
	b.LW(isa.RegA0, isa.RegSP, 0) // instrumented -> calls __kasan_load4
	b.HALT()
	if _, err := b.Link("x"); err == nil || !strings.Contains(err.Error(), SymKasanLoad4) {
		t.Errorf("expected undefined-symbol error for %s, got %v", SymKasanLoad4, err)
	}
}

func TestNativeKASANGlobalTable(t *testing.T) {
	b := NewBuilder(Target{Arch: isa.ArchARM32E, Sanitize: SanNativeKASAN})
	b.Global("g1", 16)
	b.Global("g2", 100)
	b.Func("_start")
	b.HALT()
	img, err := b.Link("x")
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	tbl, ok := img.Lookup(SymKasanGlobalTable)
	if !ok {
		t.Fatal("no global table symbol")
	}
	// count word + 2 entries
	off := tbl.Addr - img.DataAddr
	if got := img.Arch.Word(img.Data[off:]); got != 2 {
		t.Fatalf("table count = %d, want 2", got)
	}
	a1 := img.Arch.Word(img.Data[off+4:])
	s1 := img.Arch.Word(img.Data[off+8:])
	rz := img.Arch.Word(img.Data[off+12:])
	g1, _ := img.Lookup("g1")
	if a1 != g1.Addr || s1 != 16 || rz != GlobalRedzone {
		t.Errorf("table entry = (%#x,%d,%d), want (%#x,16,%d)", a1, s1, rz, g1.Addr, GlobalRedzone)
	}
}

func TestReservedRegisterEnforcement(t *testing.T) {
	b := NewBuilder(Target{Arch: isa.ArchARM32E, Sanitize: SanEmbsanC})
	b.Func("_start")
	b.ADDI(isa.RegK0, isa.RegZero, 1) // illegal under sanitized builds
	b.HALT()
	if _, err := b.Link("x"); err == nil || !strings.Contains(err.Error(), "reserved") {
		t.Errorf("reserved register use not rejected: %v", err)
	}

	// AllowReserved lifts the restriction.
	b2 := NewBuilder(Target{Arch: isa.ArchARM32E, Sanitize: SanEmbsanC})
	b2.Func("_start")
	b2.AllowReserved(func() { b2.ADDI(isa.RegK0, isa.RegZero, 1) })
	b2.HALT()
	if _, err := b2.Link("x"); err != nil {
		t.Errorf("AllowReserved rejected: %v", err)
	}
}

func TestDuplicateAndUndefinedSymbols(t *testing.T) {
	b := NewBuilder(Target{Arch: isa.ArchARM32E})
	b.Func("_start")
	b.Func("_start")
	b.HALT()
	if _, err := b.Link("x"); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate func not rejected: %v", err)
	}

	b2 := NewBuilder(Target{Arch: isa.ArchARM32E})
	b2.Func("_start")
	b2.Call("missing")
	if _, err := b2.Link("x"); err == nil || !strings.Contains(err.Error(), "undefined") {
		t.Errorf("undefined symbol not rejected: %v", err)
	}
}

func TestDataWordSyms(t *testing.T) {
	b := NewBuilder(Target{Arch: isa.ArchMIPS32E})
	b.Func("_start")
	b.HALT()
	b.Func("fn_a")
	b.Ret()
	b.Func("fn_b")
	b.Ret()
	b.DataWordSyms("table", []string{"fn_b", "fn_a"})
	img, err := b.Link("x")
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	tbl, _ := img.Lookup("table")
	fa, _ := img.Lookup("fn_a")
	fb, _ := img.Lookup("fn_b")
	off := tbl.Addr - img.DataAddr
	if got := img.Arch.Word(img.Data[off:]); got != fb.Addr {
		t.Errorf("table[0] = %#x, want fn_b %#x", got, fb.Addr)
	}
	if got := img.Arch.Word(img.Data[off+4:]); got != fa.Addr {
		t.Errorf("table[1] = %#x, want fn_a %#x", got, fa.Addr)
	}
}

func TestGuardedBufferValidation(t *testing.T) {
	b := NewBuilder(Target{Arch: isa.ArchARM32E, Sanitize: SanEmbsanC})
	b.Func("_start")
	b.GuardedBuffer(8, 16, isa.RegA1) // bufOff < 16: no room for the left redzone
	b.HALT()
	if _, err := b.Link("x"); err == nil || !strings.Contains(err.Error(), "redzone") {
		t.Errorf("undersized guard offset not rejected: %v", err)
	}

	// Uninstrumented builds reduce the guard to an address computation.
	b2 := NewBuilder(Target{Arch: isa.ArchARM32E})
	b2.Func("_start")
	b2.GuardedBuffer(16, 24, isa.RegA1)
	b2.UnguardBuffer(16, 24)
	b2.HALT()
	img, err := b2.Link("plain")
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Text) != 3*4 { // addi + halt + the closeFunc boundary? just addi, halt
		// One ADDI for the address plus HALT.
		if len(img.Text) != 2*4 {
			t.Errorf("plain guard emitted %d bytes of text", len(img.Text))
		}
	}
}

func TestBranchOutOfRange(t *testing.T) {
	b := NewBuilder(Target{Arch: isa.ArchARM32E})
	b.Func("_start")
	b.BEQ(isa.RegA0, isa.RegA1, "far")
	// Pad past the ±8 KiB branch range.
	for i := 0; i < 3000; i++ {
		b.ADDI(isa.RegZero, isa.RegZero, 0)
	}
	b.Label("far")
	b.HALT()
	if _, err := b.Link("x"); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("out-of-range branch not rejected: %v", err)
	}
}

func TestUniqueLabels(t *testing.T) {
	b := NewBuilder(Target{Arch: isa.ArchARM32E})
	a, c := b.Unique("x"), b.Unique("x")
	if a == c {
		t.Errorf("Unique returned duplicates: %q", a)
	}
}

func TestSplitConst(t *testing.T) {
	for _, v := range []uint32{0, 1, 0x7FF, 0x800, 0xFFF, 0x1000, 0x12345678, 0xFFFFFFFF, 0x80000000, 0xFFFFF800} {
		hi, lo := splitConst(v)
		got := uint32(hi<<12) + uint32(lo)
		if got != v {
			t.Errorf("splitConst(%#x): hi=%#x lo=%d -> %#x", v, hi, lo, got)
		}
		if lo < -2048 || lo > 2047 {
			t.Errorf("splitConst(%#x): lo %d out of range", v, lo)
		}
	}
}

func TestImageEncodeDecodeAndStrip(t *testing.T) {
	img := buildTrivial(t, SanEmbsanC)
	b, err := img.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeImage(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != img.Name || got.Entry != img.Entry || len(got.Symbols) != len(img.Symbols) {
		t.Error("image round trip mismatch")
	}
	s := img.Strip()
	if !s.Stripped || s.Symbols != nil || len(s.Meta.Globals) != 0 {
		t.Error("Strip left symbol information behind")
	}
	if s.Symbolize(img.Entry) == img.Symbolize(img.Entry) {
		t.Error("stripped image should symbolize to raw addresses")
	}
}

func TestSymbolize(t *testing.T) {
	img := buildTrivial(t, SanNone)
	f, _ := img.Lookup("_start")
	if got := img.Symbolize(f.Addr); got != "_start" {
		t.Errorf("Symbolize(entry) = %q", got)
	}
	if got := img.Symbolize(f.Addr + 8); got != "_start+0x8" {
		t.Errorf("Symbolize(entry+8) = %q", got)
	}
	if fn, ok := img.FuncAt(f.Addr + 4); !ok || fn.Name != "_start" {
		t.Errorf("FuncAt = %+v, %v", fn, ok)
	}
}
