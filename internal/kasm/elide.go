package kasm

import (
	"fmt"
	"sort"

	"embsan/internal/isa"
)

// Link-time SANCK elision. The static safety prover (internal/static/absint)
// classifies instrumented accesses whose entire accessed range is provably
// inside a known object (or device memory) on every execution; the pass below
// mechanically drops the SANCK trap in front of each such access, replacing
// it with the FENCE no-op pad so the text layout — and therefore every code
// address and instruction count — is unchanged. Each dropped probe is
// recorded in the link metadata so `embsan lint -elide` can re-derive the
// proof and audit the elision after the fact.

// ElideKind names the proof a SANCK elision rests on.
type ElideKind uint8

const (
	// ElideGlobal: the accessed range is inside a known global object's
	// payload, away from its redzones.
	ElideGlobal ElideKind = iota + 1
	// ElideStack: the access stays inside the enclosing function's own
	// stack frame (between the current and the entry stack pointer).
	ElideStack
	// ElideMMIO: the access targets device memory, which the sanitizer
	// runtime never checks.
	ElideMMIO
)

func (k ElideKind) String() string {
	switch k {
	case ElideGlobal:
		return "global"
	case ElideStack:
		return "stack"
	case ElideMMIO:
		return "mmio"
	}
	return fmt.Sprintf("elide%d", k)
}

// Elision records one dropped compile-time probe: where the SANCK stood,
// which access it guarded, and the proof that justified removing it.
type Elision struct {
	Site   uint32 // pc of the dropped SANCK (now a FENCE pad)
	Access uint32 // pc of the guarded access (Site+4)
	Kind   ElideKind
	Object string // containing object for ElideGlobal proofs
}

// ElisionAt returns the recorded elision whose pad sits at site.
func (m *Metadata) ElisionAt(site uint32) (Elision, bool) {
	i := sort.Search(len(m.Elisions), func(i int) bool { return m.Elisions[i].Site >= site })
	if i < len(m.Elisions) && m.Elisions[i].Site == site {
		return m.Elisions[i], true
	}
	return Elision{}, false
}

// ElideSancks returns a copy of the image with the SANCK at each elision
// site replaced by a FENCE pad and the elisions recorded in the metadata.
// Every site is validated first: it must hold a SANCK whose size, direction
// and addressing match the access it guards — the same pairing the lint
// audit enforces — so a stale proof set cannot silently corrupt the text.
func (img *Image) ElideSancks(els []Elision) (*Image, error) {
	if img.Meta.Sanitize != SanEmbsanC {
		return nil, fmt.Errorf("kasm: elide: %s is a %s build, not embsan-c", img.Name, img.Meta.Sanitize)
	}
	if img.Stripped {
		return nil, fmt.Errorf("kasm: elide: %s is stripped", img.Name)
	}
	out := *img
	out.Text = append([]byte(nil), img.Text...)
	out.Meta.Elisions = append([]Elision(nil), els...)
	sort.Slice(out.Meta.Elisions, func(i, j int) bool {
		return out.Meta.Elisions[i].Site < out.Meta.Elisions[j].Site
	})
	pad, err := isa.Encode(isa.Inst{Op: isa.OpFENCE}, img.Arch)
	if err != nil {
		return nil, fmt.Errorf("kasm: elide: %w", err)
	}
	for i, e := range out.Meta.Elisions {
		if i > 0 && out.Meta.Elisions[i-1].Site == e.Site {
			return nil, fmt.Errorf("kasm: elide: duplicate site %#x", e.Site)
		}
		if e.Access != e.Site+4 {
			return nil, fmt.Errorf("kasm: elide: site %#x does not guard access %#x", e.Site, e.Access)
		}
		probe, err := img.decodeAt(e.Site)
		if err != nil || probe.Op != isa.OpSANCK {
			return nil, fmt.Errorf("kasm: elide: no SANCK at %#x", e.Site)
		}
		acc, err := img.decodeAt(e.Access)
		if err != nil {
			return nil, fmt.Errorf("kasm: elide: undecodable access at %#x", e.Access)
		}
		size, write, atomic, aok := accessShape(acc.Op)
		if !aok {
			return nil, fmt.Errorf("kasm: elide: %#x guards a non-access", e.Site)
		}
		off := acc.Imm
		if isa.ClassOf(acc.Op) == isa.ClassAtomic || acc.Op == isa.OpLRW || acc.Op == isa.OpSCW {
			off = 0
		}
		if probe.Rd != isa.SanckInfo(size, write, atomic) || probe.Rs1 != acc.Rs1 || probe.Imm != off {
			return nil, fmt.Errorf("kasm: elide: probe at %#x does not match its access", e.Site)
		}
		img.Arch.PutWord(out.Text[e.Site-out.Base:], pad)
	}
	return &out, nil
}

func (img *Image) decodeAt(pc uint32) (isa.Inst, error) {
	if pc < img.Base || pc%4 != 0 || int(pc-img.Base)+4 > len(img.Text) {
		return isa.Inst{}, fmt.Errorf("kasm: %#x outside text", pc)
	}
	return isa.Decode(img.Arch.Word(img.Text[pc-img.Base:]), img.Arch)
}

// accessShape returns the SANCK-relevant shape of a memory access opcode.
func accessShape(op isa.Op) (size uint32, write, atomic, ok bool) {
	switch isa.ClassOf(op) {
	case isa.ClassLoad, isa.ClassStore:
		return isa.AccessSize(op), isa.IsWrite(op), false, true
	case isa.ClassAtomic:
		return isa.AccessSize(op), isa.IsWrite(op), true, true
	}
	return 0, false, false, false
}
