package kasm

import "embsan/internal/isa"

// Compile-time instrumentation. Depending on the build's sanitize mode,
// every memory access emitted through the builder is prefixed with either a
// trapping SANCK instruction (EMBSAN-C: one instruction, no architectural
// side effects, interpreted directly by the host) or an in-guest runtime
// call (the native KASAN/KCSAN baselines). Code inside NoSan regions —
// allocator internals and the sanitizer runtime itself — is left alone.

func (b *Builder) load(op isa.Op, rd, base uint8, off int32) {
	b.instrumentAccess(op, base, off)
	b.emit(isa.Inst{Op: op, Rd: rd, Rs1: base, Imm: off})
}

func (b *Builder) store(op isa.Op, src, base uint8, off int32) {
	b.instrumentAccess(op, base, off)
	b.emit(isa.Inst{Op: op, Rs1: base, Rs2: src, Imm: off})
}

func (b *Builder) atomic(op isa.Op, rd, addrReg, src uint8) {
	b.instrumentAccess(op, addrReg, 0)
	b.emit(isa.Inst{Op: op, Rd: rd, Rs1: addrReg, Rs2: src})
}

func (b *Builder) amoLoad(op isa.Op, rd, addrReg uint8) {
	b.instrumentAccess(op, addrReg, 0)
	b.emit(isa.Inst{Op: op, Rd: rd, Rs1: addrReg})
}

func (b *Builder) instrumentAccess(op isa.Op, base uint8, off int32) {
	if b.nosan > 0 {
		return
	}
	size := isa.AccessSize(op)
	write := isa.IsWrite(op)
	atomic := isa.ClassOf(op) == isa.ClassAtomic
	switch b.target.Sanitize {
	case SanEmbsanC:
		// One trapping instruction carrying base register, offset, size and
		// direction — the host reconstructs the address without any guest
		// register traffic.
		b.emitRaw(isa.Inst{
			Op:  isa.OpSANCK,
			Rd:  isa.SanckInfo(size, write, atomic),
			Rs1: base,
			Imm: off,
		})
	case SanNativeKASAN:
		b.emitRaw(isa.Inst{Op: isa.OpADDI, Rd: isa.RegK0, Rs1: base, Imm: off})
		b.emitRawFix(isa.Inst{Op: isa.OpJAL, Rd: isa.RegK2}, fixJAL, kasanEntry(size, write))
	case SanNativeKCSAN:
		if atomic {
			// Atomics are marked accesses; KCSAN neither samples them nor
			// reports marked-vs-marked conflicts, so they carry no callback.
			return
		}
		b.emitRaw(isa.Inst{Op: isa.OpADDI, Rd: isa.RegK0, Rs1: base, Imm: off})
		entry := SymKcsanLoad
		if write {
			entry = SymKcsanStore
		}
		b.emitRawFix(isa.Inst{Op: isa.OpJAL, Rd: isa.RegK2}, fixJAL, entry)
	}
}

func kasanEntry(size uint32, write bool) string {
	switch {
	case write && size == 1:
		return SymKasanStore1
	case write && size == 2:
		return SymKasanStore2
	case write:
		return SymKasanStore4
	case size == 1:
		return SymKasanLoad1
	case size == 2:
		return SymKasanLoad2
	default:
		return SymKasanLoad4
	}
}
