package kasm

import (
	"errors"
	"fmt"
	"sort"

	"embsan/internal/isa"
)

const (
	dataAlign  = 64
	tableEntry = 12 // addr, size, redzone words per sanitized global
)

// Link resolves all symbols and fixups and produces the firmware image.
func (b *Builder) Link(name string) (*Image, error) {
	b.closeFunc()
	if len(b.errs) > 0 {
		return nil, errors.Join(b.errs...)
	}

	textEnd := b.target.Base + uint32(len(b.code))*4

	// ---- layout ----
	cursor := align(textEnd, dataAlign)
	dataAddr := cursor

	var initSyms, bssSyms []*dsym
	for _, d := range b.data {
		if d.kind == dataInit {
			initSyms = append(initSyms, d)
		} else {
			bssSyms = append(bssSyms, d)
		}
	}
	layout := func(d *dsym) {
		cursor = align(cursor, d.align)
		if d.redzone {
			cursor += GlobalRedzone
		}
		d.addr = cursor
		cursor += d.size
		if d.redzone {
			cursor += GlobalRedzone
		}
	}
	for _, d := range initSyms {
		layout(d)
	}

	// Reserve the in-guest global-redzone table for native KASAN builds.
	var table *dsym
	if b.target.Sanitize == SanNativeKASAN {
		var nrz int
		for _, d := range b.data {
			if d.redzone {
				nrz++
			}
		}
		table = &dsym{
			name: SymKasanGlobalTable,
			kind: dataInit,
			size: uint32(4 + tableEntry*nrz),
			init: make([]byte, 4+tableEntry*nrz),
		}
		if _, dup := b.dataIdx[table.name]; dup {
			return nil, fmt.Errorf("kasm: symbol %q is reserved", table.name)
		}
		b.dataIdx[table.name] = table
		layout(table)
		initSyms = append(initSyms, table)
	}

	dataEnd := cursor
	bssAddr := align(cursor, dataAlign)
	cursor = bssAddr
	for _, d := range bssSyms {
		layout(d)
	}
	bssEnd := cursor

	// Fill the native global table now that bss addresses are known.
	var globals []GlobalMeta
	for _, d := range b.data {
		if d.redzone {
			globals = append(globals, GlobalMeta{
				Name: d.name, Addr: d.addr, Size: d.size, Redzone: GlobalRedzone,
			})
		}
	}
	if table != nil {
		b.target.Arch.PutWord(table.init[0:], uint32(len(globals)))
		for i, g := range globals {
			off := 4 + i*tableEntry
			b.target.Arch.PutWord(table.init[off:], g.Addr)
			b.target.Arch.PutWord(table.init[off+4:], g.Size)
			b.target.Arch.PutWord(table.init[off+8:], g.Redzone)
		}
	}

	// ---- symbol resolution ----
	resolve := func(sym string) (uint32, bool) {
		if idx, ok := b.labels[sym]; ok {
			return b.target.Base + uint32(idx)*4, true
		}
		if d, ok := b.dataIdx[sym]; ok {
			return d.addr, true
		}
		return 0, false
	}

	// ---- fixups and encoding ----
	text := make([]byte, len(b.code)*4)
	var errs []error
	for i, ce := range b.code {
		inst := ce.inst
		if ce.fix != fixNone {
			target, ok := resolve(ce.sym)
			if !ok {
				errs = append(errs, fmt.Errorf("kasm: undefined symbol %q", ce.sym))
				continue
			}
			pc := b.target.Base + uint32(i)*4
			switch ce.fix {
			case fixBranch, fixJAL:
				delta := int64(target) - int64(pc)
				if delta%4 != 0 {
					errs = append(errs, fmt.Errorf("kasm: misaligned target %q", ce.sym))
					continue
				}
				imm := int32(delta / 4)
				limit := int32(1 << 11)
				if ce.fix == fixJAL {
					limit = 1 << 19
				}
				if imm < -limit || imm >= limit {
					errs = append(errs, fmt.Errorf("kasm: %q out of range from %#x", ce.sym, pc))
					continue
				}
				inst.Imm = imm
			case fixHi:
				hi, _ := splitConst(target)
				inst.Imm = hi
			case fixLo:
				_, lo := splitConst(target)
				inst.Imm = lo
			case fixPCHi:
				hi, _ := splitConst(target - pc)
				inst.Imm = hi
			case fixPCLo:
				// The low part pairs with the auipc immediately before it,
				// so the split is of the same delta that auipc saw.
				_, lo := splitConst(target - (pc - 4))
				inst.Imm = lo
			}
		}
		w, err := isa.Encode(inst, b.target.Arch)
		if err != nil {
			errs = append(errs, fmt.Errorf("kasm: at index %d: %w", i, err))
			continue
		}
		b.target.Arch.PutWord(text[i*4:], w)
	}

	// ---- data image ----
	data := make([]byte, dataEnd-dataAddr)
	for _, d := range initSyms {
		copy(data[d.addr-dataAddr:], d.init)
		for off, sym := range d.wordSyms {
			target, ok := resolve(sym)
			if !ok {
				errs = append(errs, fmt.Errorf("kasm: undefined symbol %q in %s", sym, d.name))
				continue
			}
			b.target.Arch.PutWord(data[d.addr-dataAddr+off:], target)
		}
		for off, sym := range d.relSyms {
			target, ok := resolve(sym)
			if !ok {
				errs = append(errs, fmt.Errorf("kasm: undefined symbol %q in %s", sym, d.name))
				continue
			}
			b.target.Arch.PutWord(data[d.addr-dataAddr+off:], target-d.addr)
		}
	}

	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}

	// ---- symbol table ----
	var syms []Symbol
	for _, f := range b.funcs {
		syms = append(syms, Symbol{
			Name: f.name,
			Addr: b.target.Base + uint32(f.start)*4,
			Size: uint32(f.end-f.start) * 4,
			Kind: SymFunc,
		})
	}
	for _, d := range b.data {
		syms = append(syms, Symbol{Name: d.name, Addr: d.addr, Size: d.size, Kind: SymObject})
	}
	if table != nil {
		syms = append(syms, Symbol{Name: table.name, Addr: table.addr, Size: table.size, Kind: SymObject})
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i].Addr < syms[j].Addr })

	entry, ok := resolve("_start")
	if !ok {
		return nil, errors.New("kasm: no _start symbol")
	}

	meta := b.meta
	meta.Globals = globals
	for _, r := range b.nosanRanges {
		if r.end > r.start {
			meta.NoSanRegions = append(meta.NoSanRegions, AddrRange{
				Start: b.target.Base + uint32(r.start)*4,
				End:   b.target.Base + uint32(r.end)*4,
			})
		}
	}

	return &Image{
		Name:     name,
		Arch:     b.target.Arch,
		Base:     b.target.Base,
		Entry:    entry,
		Text:     text,
		Data:     data,
		DataAddr: dataAddr,
		BSSAddr:  bssAddr,
		BSSSize:  bssEnd - bssAddr,
		Symbols:  syms,
		Meta:     meta,
	}, nil
}

func align(v, a uint32) uint32 {
	if a == 0 {
		return v
	}
	return (v + a - 1) &^ (a - 1)
}
