package fuzz

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"embsan/internal/emu"
	"embsan/internal/san"
)

func TestSaveAndLoadArtifacts(t *testing.T) {
	dir := t.TempDir()
	res := &Result{
		Corpus: [][]byte{{1, 2, 3}, {4, 5}},
		Crashes: []*Crash{
			{
				Signature: "KASAN:slab-out-of-bounds:lfs_bd_read",
				Input:     []byte{9, 9, 9},
				Minimized: []byte{9},
				Report: &san.Report{
					Tool: san.ToolKASAN, Bug: san.BugOOB,
					Addr: 0x1234, Size: 1, Write: true, PC: 0x1000,
					Location: "lfs_bd_read+0x5c",
				},
			},
			{
				Signature: "fault:instruction fetch fault:0x0",
				Input:     []byte{7},
				Minimized: []byte{7},
				Fault:     &emu.Fault{Kind: emu.FaultBadFetch, PC: 0},
			},
		},
	}
	if err := res.SaveArtifacts(dir, nil); err != nil {
		t.Fatal(err)
	}

	corpus, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) != 2 || string(corpus[0]) != "\x01\x02\x03" {
		t.Errorf("corpus round trip: %v", corpus)
	}

	crashDirs, err := os.ReadDir(filepath.Join(dir, "crashes"))
	if err != nil {
		t.Fatal(err)
	}
	if len(crashDirs) != 2 {
		t.Fatalf("crash dirs = %d", len(crashDirs))
	}
	rep, err := os.ReadFile(filepath.Join(dir, "crashes",
		"KASAN_slab-out-of-bounds_lfs_bd_read", "report.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rep), "BUG: KASAN: slab-out-of-bounds") {
		t.Errorf("report content: %s", rep)
	}
	repro, err := os.ReadFile(filepath.Join(dir, "crashes",
		"KASAN_slab-out-of-bounds_lfs_bd_read", "repro.bin"))
	if err != nil || len(repro) != 1 || repro[0] != 9 {
		t.Errorf("repro = %v, %v", repro, err)
	}
}

func TestLoadCorpusMissingDir(t *testing.T) {
	if _, err := LoadCorpus(t.TempDir()); err == nil {
		t.Error("missing corpus dir accepted")
	}
}

func TestSanitizeSig(t *testing.T) {
	got := sanitizeSig("KASAN:use-after-free:fn+0x12/0x30")
	if strings.ContainsAny(got, ":/+") {
		t.Errorf("unsafe characters survive: %q", got)
	}
}
