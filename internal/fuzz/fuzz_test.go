package fuzz

import (
	"testing"

	"embsan/internal/core"
	"embsan/internal/emu"
	"embsan/internal/guest/elinux"
	"embsan/internal/guest/firmware"
	"embsan/internal/isa"
	"embsan/internal/kasm"
)

func bootedInstance(t *testing.T, img *kasm.Image, sanitizers []string) *core.Instance {
	t.Helper()
	inst, err := core.New(core.Config{
		Image:        img,
		Sanitizers:   sanitizers,
		StopOnReport: true,
		Machine:      emu.Config{MaxHarts: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Boot(100_000_000); err != nil {
		t.Fatal(err)
	}
	inst.Snapshot()
	return inst
}

func TestSyscallFuzzingFindsSeededBugs(t *testing.T) {
	fw, err := elinux.Build(elinux.Board{
		Name: "fuzz-target", Arch: isa.ArchARM32E, Mode: kasm.SanNone,
		BugFns: []string{"nfs_acl_decode", "btusb_recv_bulk", "skb_clone_frag"},
	})
	if err != nil {
		t.Fatal(err)
	}
	inst := bootedInstance(t, fw.Image, []string{"kasan"})
	f, err := New(Config{
		Instance: inst,
		Frontend: FrontendSyscall,
		Syscalls: len(fw.Syscalls),
		Seed:     1,
		MaxExecs: 25000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := f.Run()
	found := map[string]bool{}
	for _, c := range res.Crashes {
		if c.Report != nil {
			found[c.Report.Signature()] = true
		}
	}
	if len(res.Crashes) < 3 {
		t.Errorf("found %d crashes, want the 3 seeded bugs (cover=%d, corpus=%d)",
			len(res.Crashes), res.Stats.CoverBlocks, res.Stats.CorpusSize)
		for _, c := range res.Crashes {
			t.Logf("crash: %s", c.Signature)
		}
	}
	// Minimized reproducers must be single records for these shallow bugs.
	for _, c := range res.Crashes {
		if c.Report == nil || c.Report.Bug.Short() == "Race" {
			continue
		}
		if len(c.Minimized) != 24 {
			t.Errorf("%s: minimized to %d bytes, want one 24-byte record", c.Signature, len(c.Minimized))
		}
	}
	if res.Stats.CoverBlocks == 0 || res.Stats.CorpusSize == 0 {
		t.Error("no coverage feedback collected")
	}
}

func TestByteFuzzingFindsParserBugs(t *testing.T) {
	fw, err := firmware.Build("TP-Link WDR-7660")
	if err != nil {
		t.Fatal(err)
	}
	inst := bootedInstance(t, fw.Image, []string{"kasan"})
	f, err := New(Config{
		Instance: inst,
		Frontend: FrontendBytes,
		Seeds:    fw.Seeds,
		Seed:     2,
		MaxExecs: 15000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := f.Run()
	if len(res.Crashes) < 2 {
		t.Errorf("found %d crashes, want both parser bugs (cover=%d)",
			len(res.Crashes), res.Stats.CoverBlocks)
		for _, c := range res.Crashes {
			t.Logf("crash: %s", c.Signature)
		}
	}
	for _, c := range res.Crashes {
		if len(c.Minimized) > len(c.Input) {
			t.Errorf("%s: minimization grew the input", c.Signature)
		}
	}
}

func TestCrashDeduplication(t *testing.T) {
	fw, err := elinux.Build(elinux.Board{
		Name: "dedup", Arch: isa.ArchARM32E, Mode: kasm.SanNone,
		BugFns: []string{"nfs_acl_decode"},
	})
	if err != nil {
		t.Fatal(err)
	}
	inst := bootedInstance(t, fw.Image, []string{"kasan"})
	f, err := New(Config{
		Instance: inst, Frontend: FrontendSyscall,
		Syscalls: len(fw.Syscalls), Seed: 3, MaxExecs: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := f.Run()
	// One seeded bug -> at most one sanitizer crash signature (plus possibly
	// distinct fault signatures, which these bugs do not produce).
	sigs := map[string]int{}
	for _, c := range res.Crashes {
		sigs[c.Signature]++
		if sigs[c.Signature] > 1 {
			t.Errorf("duplicate crash %s", c.Signature)
		}
	}
	if len(res.Crashes) > 1 {
		t.Errorf("crashes = %d, want 1 after dedup", len(res.Crashes))
	}
}

// TestCampaignDeterminism: identical seeds give identical campaigns.
func TestCampaignDeterminism(t *testing.T) {
	fw, err := elinux.Build(elinux.Board{
		Name: "det", Arch: isa.ArchARM32E, Mode: kasm.SanNone,
		BugFns: []string{"nfs_acl_decode"},
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func() (int, int, []string) {
		inst := bootedInstance(t, fw.Image, []string{"kasan"})
		f, err := New(Config{
			Instance: inst, Frontend: FrontendSyscall,
			Syscalls: len(fw.Syscalls), Seed: 99, MaxExecs: 4000,
		})
		if err != nil {
			t.Fatal(err)
		}
		res := f.Run()
		var sigs []string
		for _, c := range res.Crashes {
			sigs = append(sigs, c.Signature)
		}
		return res.Stats.CorpusSize, res.Stats.CoverBlocks, sigs
	}
	c1, b1, s1 := run()
	c2, b2, s2 := run()
	if c1 != c2 || b1 != b2 || len(s1) != len(s2) {
		t.Errorf("campaigns diverged: (%d,%d,%v) vs (%d,%d,%v)", c1, b1, s1, c2, b2, s2)
	}
	for i := range s1 {
		if i < len(s2) && s1[i] != s2[i] {
			t.Errorf("crash order diverged: %v vs %v", s1, s2)
		}
	}
}

func TestFuzzerConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil instance accepted")
	}
	fw, _ := elinux.Build(elinux.Board{Name: "cfg", Arch: isa.ArchARM32E})
	inst := bootedInstance(t, fw.Image, []string{"kasan"})
	if _, err := New(Config{Instance: inst, Frontend: FrontendSyscall}); err == nil {
		t.Error("missing syscall table size accepted")
	}
}
