package fuzz

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"embsan/internal/kasm"
)

// SaveArtifacts persists a campaign's corpus and crashes in the layout
// fuzzing infrastructure expects:
//
//	dir/corpus/NNNN.bin               coverage-increasing inputs
//	dir/crashes/<signature>/input.bin  the original crashing input
//	dir/crashes/<signature>/repro.bin  the minimized reproducer
//	dir/crashes/<signature>/report.txt the formatted sanitizer report
func (r *Result) SaveArtifacts(dir string, img *kasm.Image) error {
	corpusDir := filepath.Join(dir, "corpus")
	if err := os.MkdirAll(corpusDir, 0o755); err != nil {
		return fmt.Errorf("fuzz: %w", err)
	}
	for i, in := range r.Corpus {
		p := filepath.Join(corpusDir, fmt.Sprintf("%04d.bin", i))
		if err := os.WriteFile(p, in, 0o644); err != nil {
			return fmt.Errorf("fuzz: %w", err)
		}
	}
	for _, c := range r.Crashes {
		cd := filepath.Join(dir, "crashes", sanitizeSig(c.Signature))
		if err := os.MkdirAll(cd, 0o755); err != nil {
			return fmt.Errorf("fuzz: %w", err)
		}
		if err := os.WriteFile(filepath.Join(cd, "input.bin"), c.Input, 0o644); err != nil {
			return fmt.Errorf("fuzz: %w", err)
		}
		if err := os.WriteFile(filepath.Join(cd, "repro.bin"), c.Minimized, 0o644); err != nil {
			return fmt.Errorf("fuzz: %w", err)
		}
		report := c.Signature + "\n"
		if c.Report != nil {
			report = c.Report.Format(img)
		} else if c.Fault != nil {
			report = c.Fault.Error() + "\n"
		}
		if err := os.WriteFile(filepath.Join(cd, "report.txt"), []byte(report), 0o644); err != nil {
			return fmt.Errorf("fuzz: %w", err)
		}
	}
	return nil
}

// LoadCorpus reads a previously saved corpus directory (dir/corpus/*.bin),
// for resuming campaigns or replaying the merged corpus as a workload.
func LoadCorpus(dir string) ([][]byte, error) {
	entries, err := os.ReadDir(filepath.Join(dir, "corpus"))
	if err != nil {
		return nil, fmt.Errorf("fuzz: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".bin") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	out := make([][]byte, 0, len(names))
	for _, n := range names {
		b, err := os.ReadFile(filepath.Join(dir, "corpus", n))
		if err != nil {
			return nil, fmt.Errorf("fuzz: %w", err)
		}
		out = append(out, b)
	}
	return out, nil
}

// sanitizeSig turns a crash signature into a filesystem-safe directory name.
func sanitizeSig(sig string) string {
	var b strings.Builder
	for _, r := range sig {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
