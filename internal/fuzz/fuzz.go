// Package fuzz is the coverage-guided fuzzing engine EMBSAN assists. It
// has two frontends matching the paper's tooling: a Syzkaller-style typed
// syscall-program generator for Embedded Linux firmware, and a
// Tardis-style byte-input mutator for RTOS firmware, both driven by the
// OS-agnostic translation-block coverage the emulator exposes.
package fuzz

import (
	"fmt"
	"math/rand"

	"embsan/internal/core"
	"embsan/internal/emu"
	"embsan/internal/guest/gabi"
	"embsan/internal/obs"
	"embsan/internal/obs/timeline"
	"embsan/internal/san"
)

// Frontend selects the input model.
type Frontend uint8

const (
	FrontendSyscall Frontend = iota
	FrontendBytes
)

// Config configures a campaign.
type Config struct {
	Instance *core.Instance // booted, snapshotted, StopOnReport recommended
	Frontend Frontend
	Syscalls int // syscall-frontend: size of the guest syscall table
	Seeds    [][]byte
	Seed     int64 // RNG seed (deterministic campaigns)

	MaxExecs   int    // execution budget
	ExecBudget uint64 // instruction budget per execution (default 2M)
	MaxRecords int    // syscall frontend: max records per program (default 8)
	MaxInput   int    // bytes frontend: max input length (default 128)

	// ReachableLeaders lists the statically reachable basic-block leader
	// PCs (static.Analysis.ReachableLeaders). When set, the campaign counts
	// how many of them execute and Stats.Coverage reports that count as a
	// fraction of the static upper bound. Nil means unknown.
	ReachableLeaders []uint32

	// ProvenAccesses / ReachableAccesses carry the static safety prover's
	// result (absint): how many statically reachable memory accesses were
	// proven safe, out of how many. Both zero means unknown. The campaign
	// only echoes them into Stats — they are computed once per image, not
	// per execution.
	ProvenAccesses    int
	ReachableAccesses int

	// Timeline, when set, samples the campaign-progress metric vector on
	// the cumulative retired-instruction clock (Stats.Insts). The sampler
	// is caller-owned: the campaign driver Resets it per job and copies
	// samples out afterwards. Nil costs one pointer check per execution.
	Timeline *timeline.Sampler
}

// Crash is one deduplicated finding.
type Crash struct {
	Signature string
	Report    *san.Report // nil for raw guest faults
	Fault     *emu.Fault
	Input     []byte
	Minimized []byte
	Execs     int // executions consumed when first found
}

// Stats summarises a campaign.
type Stats struct {
	Execs       int
	CorpusSize  int
	CoverBlocks int
	Insts       uint64

	// CoverLeaders counts the Config.ReachableLeaders that executed;
	// ReachableBlocks echoes the bound's size. Raw CoverBlocks is not
	// comparable to the static bound — dynamic TB entry points outnumber
	// static leaders when quantum slicing restarts blocks mid-stream — so
	// the coverage fraction counts leaders only.
	CoverLeaders    int
	ReachableBlocks int

	// ProvenAccesses / ReachableAccesses echo Config: statically proven-safe
	// memory accesses out of the statically reachable accesses.
	ProvenAccesses    int
	ReachableAccesses int
}

// Coverage returns covered static block leaders as a fraction of the
// statically reachable upper bound, clamped to [0, 1]; ok is false when
// the bound is unknown.
func (s Stats) Coverage() (frac float64, ok bool) {
	if s.ReachableBlocks <= 0 {
		return 0, false
	}
	f := float64(s.CoverLeaders) / float64(s.ReachableBlocks)
	if f > 1 {
		f = 1
	}
	return f, true
}

// ProofDensity returns statically proven-safe accesses as a fraction of the
// statically reachable accesses, clamped to [0, 1]; ok is false when the
// prover did not run on this image.
func (s Stats) ProofDensity() (frac float64, ok bool) {
	if s.ReachableAccesses <= 0 {
		return 0, false
	}
	f := float64(s.ProvenAccesses) / float64(s.ReachableAccesses)
	if f > 1 {
		f = 1
	}
	return f, true
}

// Result is the campaign outcome.
type Result struct {
	Crashes []*Crash
	Corpus  [][]byte
	Stats   Stats
	// Metrics is the campaign's obs registry snapshot (fuzz.* instruments).
	Metrics *obs.Registry
}

// execInstBounds buckets per-execution guest instruction cost
// (fuzz.exec.insts): 1k, 8k, 64k, 512k, 4M.
var execInstBounds = []uint64{1 << 10, 1 << 13, 1 << 16, 1 << 19, 1 << 22}

// Fuzzer runs one campaign against one instance.
type Fuzzer struct {
	cfg        Config
	rng        *rand.Rand
	cover      map[uint32]struct{}
	newCov     int
	leaders    map[uint32]struct{} // static leader set from cfg.ReachableLeaders
	covLeaders int
	corpus     [][]byte
	seen       map[string]bool

	// Comparison-operand dictionary (byte frontend): byte-sized operands of
	// failed equality branches, in discovery order so dictionary picks stay
	// deterministic. This is how magic command bytes guarded by `if (b ==
	// MAGIC)` parsers are found without brute-forcing 1/256 odds.
	dict     []byte
	dictSeen [256]bool

	// OnCrash, if set, fires for each new deduplicated crash.
	OnCrash func(*Crash)

	metrics   *obs.Registry
	mExecs    *obs.Counter
	mCrashes  *obs.Counter
	mCorpus   *obs.Gauge
	mExecCost *obs.Histogram
}

// New creates a fuzzer.
func New(cfg Config) (*Fuzzer, error) {
	if cfg.Instance == nil {
		return nil, fmt.Errorf("fuzz: no instance")
	}
	if cfg.Frontend == FrontendSyscall && cfg.Syscalls <= 0 {
		return nil, fmt.Errorf("fuzz: syscall frontend needs the table size")
	}
	if cfg.ExecBudget == 0 {
		cfg.ExecBudget = 2_000_000
	}
	if cfg.MaxRecords == 0 {
		cfg.MaxRecords = 8
	}
	if cfg.MaxInput == 0 {
		cfg.MaxInput = 128
	}
	f := &Fuzzer{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		cover:   make(map[uint32]struct{}),
		seen:    make(map[string]bool),
		metrics: obs.NewRegistry(),
	}
	f.mExecs = f.metrics.Counter("fuzz.execs")
	f.mCrashes = f.metrics.Counter("fuzz.crashes.unique")
	f.mCorpus = f.metrics.Gauge("fuzz.corpus.size")
	f.mExecCost = f.metrics.Histogram("fuzz.exec.insts", execInstBounds)
	if len(cfg.ReachableLeaders) > 0 {
		f.leaders = make(map[uint32]struct{}, len(cfg.ReachableLeaders))
		for _, pc := range cfg.ReachableLeaders {
			f.leaders[pc] = struct{}{}
		}
	}
	return f, nil
}

// Run executes the campaign. The coverage hook is installed only for the
// duration of the run, so a pooled machine handed from campaign to
// campaign never feeds coverage into a stale fuzzer.
func (f *Fuzzer) Run() *Result {
	res := &Result{}
	inst := f.cfg.Instance

	prevHook := inst.Machine.CoverageHook
	inst.Machine.CoverageHook = func(pc uint32) {
		if _, ok := f.cover[pc]; !ok {
			f.cover[pc] = struct{}{}
			f.newCov++
			if _, ok := f.leaders[pc]; ok {
				f.covLeaders++
			}
		}
	}
	defer func() { inst.Machine.CoverageHook = prevHook }()

	if f.cfg.Frontend == FrontendBytes {
		// Redqueen-style comparison feedback: operands of failed equality
		// checks seed the mutation dictionary.
		prevCmp := inst.Machine.CmpHook
		inst.Machine.CmpHook = func(a, b uint32) {
			f.harvest(a)
			f.harvest(b)
		}
		defer func() { inst.Machine.CmpHook = prevCmp }()
	}

	execs := 0

	// Timeline sampling: the metric vector is filled from campaign state
	// only — counters are deltas against the machine's state at Run start,
	// so a pooled machine's history from earlier campaigns never leaks in.
	tl := f.cfg.Timeline
	var sampleFill func(*timeline.Sample)
	if tl != nil {
		baseCtr := inst.Machine.Counters()
		var baseEvals, baseArmed uint64
		if inst.Runtime != nil && inst.Runtime.KCSANEngine() != nil {
			baseEvals, baseArmed = inst.Runtime.KCSANEngine().Sampling()
		}
		sampleFill = func(s *timeline.Sample) {
			s.Execs = uint64(execs)
			s.CoverBlocks = uint64(len(f.cover))
			s.CorpusSize = uint64(len(f.corpus))
			s.Found = uint64(len(res.Crashes))
			d := inst.Machine.Counters().Sub(baseCtr)
			s.Translate = d.TransInsts
			s.Execute = res.Stats.Insts
			s.Sanitize = d.SanckTraps + d.MemProbes
			s.Snapshot = d.RestorePages
			s.ChainHits = d.ChainHits
			s.Dispatches = d.Dispatches
			s.ChecksElided = d.SanckElided + d.MemElided
			s.ChecksRun = d.SanckTraps + d.MemProbes
			if inst.Runtime != nil && inst.Runtime.KCSANEngine() != nil {
				evals, armed := inst.Runtime.KCSANEngine().Sampling()
				s.KCSANEvals = evals - baseEvals
				s.KCSANArmed = armed - baseArmed
			}
		}
	}

	exec1 := func(input []byte) core.ExecResult {
		inst.Restore()
		f.newCov = 0
		execs++
		f.mExecs.Inc()
		r := inst.Exec(input, f.cfg.ExecBudget)
		res.Stats.Insts += r.Insts
		f.mExecCost.Observe(r.Insts)
		if tl != nil {
			tl.Advance(res.Stats.Insts, sampleFill)
		}
		return r
	}

	record := func(input []byte, r core.ExecResult) {
		sig := crashSignature(r)
		if sig == "" || f.seen[sig] {
			return
		}
		f.seen[sig] = true
		f.mCrashes.Inc()
		c := &Crash{
			Signature: sig,
			Fault:     r.Fault,
			Input:     append([]byte(nil), input...),
			Execs:     execs,
		}
		if len(r.Reports) > 0 {
			c.Report = r.Reports[0]
		}
		isRace := c.Report != nil && c.Report.Bug == san.BugRace
		if !isRace {
			c.Minimized = f.minimize(input, sig, exec1)
		} else {
			c.Minimized = c.Input
		}
		res.Crashes = append(res.Crashes, c)
		if f.OnCrash != nil {
			f.OnCrash(c)
		}
	}

	// Seed the corpus.
	for _, s := range f.cfg.Seeds {
		if execs >= f.cfg.MaxExecs {
			break
		}
		r := exec1(s)
		if r.Crashed() {
			record(s, r)
			continue
		}
		f.corpus = append(f.corpus, append([]byte(nil), s...))
	}

	for execs < f.cfg.MaxExecs {
		input := f.nextInput()
		r := exec1(input)
		if r.Crashed() {
			record(input, r)
			continue
		}
		if f.newCov > 0 && r.Done {
			f.corpus = append(f.corpus, input)
		}
	}

	if tl != nil {
		// Terminal sample: every campaign ends with its final state on
		// record, so short campaigns below one interval still produce a
		// timeline.
		tl.Flush(res.Stats.Insts, sampleFill)
	}

	res.Corpus = f.corpus
	res.Stats.Execs = execs
	res.Stats.CorpusSize = len(f.corpus)
	f.mCorpus.Set(int64(len(f.corpus)))
	res.Metrics = f.metrics
	res.Stats.CoverBlocks = len(f.cover)
	res.Stats.CoverLeaders = f.covLeaders
	res.Stats.ReachableBlocks = len(f.cfg.ReachableLeaders)
	res.Stats.ProvenAccesses = f.cfg.ProvenAccesses
	res.Stats.ReachableAccesses = f.cfg.ReachableAccesses
	return res
}

// harvest records a byte-sized comparison operand into the dictionary.
func (f *Fuzzer) harvest(v uint32) {
	if v <= 0xFF && !f.dictSeen[v] {
		f.dictSeen[v] = true
		f.dict = append(f.dict, byte(v))
	}
}

// nextInput picks generation or mutation.
func (f *Fuzzer) nextInput() []byte {
	if f.cfg.Frontend == FrontendSyscall {
		// Syzkaller-style: mostly generate typed programs, sometimes mutate
		// a corpus program.
		if len(f.corpus) > 0 && f.rng.Intn(100) < 40 {
			return f.mutate(f.pick())
		}
		return f.genProg().Encode()
	}
	// Tardis-style: mutate the corpus (seeds anchor the format); generate
	// random bytes occasionally to escape local minima.
	if len(f.corpus) > 0 && f.rng.Intn(100) < 85 {
		return f.mutate(f.pick())
	}
	return f.genBytes()
}

func (f *Fuzzer) pick() []byte {
	return f.corpus[f.rng.Intn(len(f.corpus))]
}

// genProg generates a fresh typed syscall program.
func (f *Fuzzer) genProg() gabi.Prog {
	n := 1 + f.rng.Intn(f.cfg.MaxRecords)
	p := make(gabi.Prog, n)
	for i := range p {
		p[i] = f.genRecord()
	}
	return p
}

var argDictionary = []uint32{0, 1, 2, 4, 8, 16, 64, 127, 128, 255, 256, 4096, 0xFFFFFFFF}

func (f *Fuzzer) genRecord() gabi.Record {
	r := gabi.Record{
		NR:    uint32(f.rng.Intn(f.cfg.Syscalls)),
		NArgs: uint32(1 + f.rng.Intn(gabi.MaxArgs)),
	}
	for i := range r.Args {
		switch f.rng.Intn(10) {
		case 0, 1:
			r.Args[i] = argDictionary[f.rng.Intn(len(argDictionary))]
		case 2:
			r.Args[i] = f.rng.Uint32()
		default:
			r.Args[i] = uint32(f.rng.Intn(256))
		}
	}
	return r
}

func (f *Fuzzer) genBytes() []byte {
	n := 4 + f.rng.Intn(f.cfg.MaxInput-4)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(f.rng.Intn(256))
	}
	return b
}

// mutate applies one to three byte- or record-level mutations.
func (f *Fuzzer) mutate(in []byte) []byte {
	out := append([]byte(nil), in...)
	// Header bytes steer parsers; bias mutation positions toward them.
	pos := func() int {
		if f.rng.Intn(2) == 0 && len(out) > 8 {
			return f.rng.Intn(8)
		}
		return f.rng.Intn(len(out))
	}
	// The byte frontend also plants harvested comparison operands; the
	// syscall frontend keeps the original six cases (and rng stream).
	cases := 6
	if f.cfg.Frontend == FrontendBytes {
		cases = 7
	}
	for n := 1 + f.rng.Intn(3); n > 0 && len(out) > 0; n-- {
		switch f.rng.Intn(cases) {
		case 0: // flip a bit
			out[pos()] ^= 1 << f.rng.Intn(8)
		case 1: // set a random byte
			out[pos()] = byte(f.rng.Intn(256))
		case 2: // set a byte from the small-value dictionary
			out[pos()] = byte(argDictionary[f.rng.Intn(len(argDictionary))])
		case 3: // duplicate a tail chunk (grow)
			if len(out) < f.cfg.MaxInput {
				i := f.rng.Intn(len(out))
				out = append(out, out[i:]...)
				if len(out) > f.cfg.MaxInput {
					out = out[:f.cfg.MaxInput]
				}
			}
		case 4: // truncate
			if len(out) > 4 {
				out = out[:4+f.rng.Intn(len(out)-4)]
			}
		case 5: // splice with another corpus entry
			if len(f.corpus) > 0 {
				other := f.pick()
				i := f.rng.Intn(len(out))
				out = append(out[:i:i], other[min(i, len(other)):]...)
			}
		case 6: // plant a harvested comparison operand
			if len(f.dict) > 0 {
				out[pos()] = f.dict[f.rng.Intn(len(f.dict))]
			}
		}
	}
	if f.cfg.Frontend == FrontendSyscall {
		// Keep whole records.
		out = out[:len(out)/gabi.RecordSize*gabi.RecordSize]
		if len(out) == 0 {
			return f.genProg().Encode()
		}
	}
	return out
}

// minimize shrinks a crashing input while preserving its signature.
func (f *Fuzzer) minimize(input []byte, sig string, exec1 func([]byte) core.ExecResult) []byte {
	cur := append([]byte(nil), input...)
	crashesSame := func(candidate []byte) bool {
		r := exec1(candidate)
		return crashSignature(r) == sig
	}
	if f.cfg.Frontend == FrontendSyscall {
		// Drop records one at a time.
		for changed := true; changed; {
			changed = false
			n := len(cur) / gabi.RecordSize
			for i := 0; i < n && n > 1; i++ {
				cand := make([]byte, 0, len(cur)-gabi.RecordSize)
				cand = append(cand, cur[:i*gabi.RecordSize]...)
				cand = append(cand, cur[(i+1)*gabi.RecordSize:]...)
				if crashesSame(cand) {
					cur = cand
					n--
					changed = true
					i--
				}
			}
		}
		return cur
	}
	// Byte frontend: binary-search the shortest crashing prefix.
	lo, hi := 1, len(cur)
	for lo < hi {
		mid := (lo + hi) / 2
		if crashesSame(cur[:mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if crashesSame(cur[:hi]) {
		return append([]byte(nil), cur[:hi]...)
	}
	return cur
}

// crashSignature derives the deduplication key for an execution outcome.
func crashSignature(r core.ExecResult) string {
	if len(r.Reports) > 0 {
		return r.Reports[0].Signature()
	}
	if r.Fault != nil {
		return fmt.Sprintf("fault:%s:%#x", r.Fault.Kind, r.Fault.PC)
	}
	return ""
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
