// Fuzzcampaign: EMBSAN assisting a Tardis-style byte fuzzer on the
// InfiniTime (FreeRTOS) firmware — the paper's Table 3/4 pipeline on one
// target. The fuzzer mutates valid service requests; EMBSAN's sanitizer
// runtime turns silent corruptions into crisp reports.
package main

import (
	"fmt"
	"log"

	"embsan"
	"embsan/internal/core"
	"embsan/internal/emu"
	"embsan/internal/fuzz"
)

func main() {
	fw, err := embsan.BuildFirmware("InfiniTime")
	if err != nil {
		log.Fatal(err)
	}
	inst, err := embsan.New(core.Config{
		Image:        fw.Image,
		Sanitizers:   []string{"kasan"},
		StopOnReport: true,
		Machine:      emu.Config{MaxHarts: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := inst.Boot(100_000_000); err != nil {
		log.Fatal(err)
	}
	inst.Snapshot()

	f, err := embsan.NewFuzzer(fuzz.Config{
		Instance: inst,
		Frontend: fuzz.FrontendBytes,
		Seeds:    fw.Seeds,
		Seed:     42,
		MaxExecs: 12000,
	})
	if err != nil {
		log.Fatal(err)
	}
	f.OnCrash = func(c *fuzz.Crash) {
		fmt.Printf("[exec %5d] %s\n", c.Execs, c.Signature)
		if c.Report != nil {
			fmt.Print(c.Report.Format(fw.Image))
		}
		fmt.Printf("  reproducer (%d bytes): % x\n", len(c.Minimized), c.Minimized)
	}
	res := f.Run()
	fmt.Printf("\ncampaign: %d execs, %d corpus entries, %d coverage blocks, %d distinct crashes\n",
		res.Stats.Execs, res.Stats.CorpusSize, res.Stats.CoverBlocks, len(res.Crashes))
}
