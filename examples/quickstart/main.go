// Quickstart: build a tiny firmware with the toolchain, run it under
// EMBSAN-D (no compile-time instrumentation at all), and watch the
// sanitizer catch a heap overflow the firmware itself never notices.
package main

import (
	"fmt"
	"log"

	"embsan"
	"embsan/internal/emu"
	"embsan/internal/guest/glib"
	"embsan/internal/isa"
	"embsan/internal/kasm"
)

func main() {
	// 1. Build firmware exactly as a vendor would: no sanitizer anywhere.
	b := kasm.NewBuilder(kasm.Target{Arch: isa.ArchARM32E, Sanitize: kasm.SanNone})
	glib.AddBoot(b, glib.BootConfig{InitFn: "heap_init", MainFn: "main"})
	glib.AddLib(b)

	b.GlobalRaw("heap", 8192)
	b.GlobalRaw("heap_next", 4)

	b.Func("heap_init")
	b.La(glib.T0, "heap_next")
	b.La(glib.T1, "heap")
	b.SW(glib.T1, glib.T0, 0)
	b.Ret()

	// malloc(a0 = size) -> a0: a 16-byte-aligned bump allocator.
	b.Func("malloc")
	b.La(glib.T0, "heap_next")
	b.LW(glib.T1, glib.T0, 0)
	b.ADDI(glib.A0, glib.A0, 15)
	b.SRLI(glib.A0, glib.A0, 4)
	b.SLLI(glib.A0, glib.A0, 4)
	b.ADD(glib.A0, glib.A0, glib.T1)
	b.SW(glib.A0, glib.T0, 0)
	b.MV(glib.A0, glib.T1)
	b.Ret()
	b.MarkAlloc("malloc")

	// The bug: a 20-byte allocation written one byte past its end.
	b.Func("main")
	b.Prologue(16)
	b.Li(glib.A0, 20)
	b.Call("malloc")
	b.Li(glib.T0, 0x41)
	b.SB(glib.T0, glib.A0, 20) // off by one!
	b.Li(glib.A0, 0)
	b.HCALL(isa.HcallExit)

	img, err := b.Link("quickstart")
	if err != nil {
		log.Fatal(err)
	}

	// 2. Attach EMBSAN: distil the KASAN spec, probe the platform (the
	// allocator is found via its symbol and confirmed by a dry run), and
	// hook the emulator's translation templates.
	inst, err := embsan.New(embsan.Config{
		Image:      img,
		Sanitizers: []string{"kasan"},
		Machine:    emu.Config{},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("probing mode: %s\n", inst.Probed.Mode)
	fmt.Printf("platform spec (DSL):\n%s\n", inst.Probed.Text())

	// 3. Run. The firmware exits normally — the overflow lands in heap
	// slack and corrupts nothing visible — but EMBSAN reports it.
	if err := inst.Boot(10_000_000); err != nil {
		log.Fatal(err)
	}
	inst.Run(10_000_000)
	for _, r := range inst.Reports() {
		fmt.Print(r.Format(img))
	}
	if len(inst.Reports()) == 0 {
		fmt.Println("no reports (unexpected!)")
	}
}
