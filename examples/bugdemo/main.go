// Bugdemo: the Table 2 experiment in miniature. Replays three known
// Embedded Linux bugs (a slab overflow, a use-after-free and a global
// out-of-bounds) under EMBSAN-C and EMBSAN-D, showing the capability
// split: without compile-time redzones the global bug is invisible.
package main

import (
	"fmt"
	"log"

	"embsan"
	"embsan/internal/core"
	"embsan/internal/emu"
	"embsan/internal/guest/firmware"
	"embsan/internal/guest/gabi"
	"embsan/internal/kasm"
)

func main() {
	bugs := []string{"ringbuf_map_alloc", "ieee80211_scan_rx", "fbcon_get_font"}

	for _, mode := range []kasm.SanitizeMode{kasm.SanEmbsanC, kasm.SanNone} {
		label := "EMBSAN-C (compile-time trapping instrumentation)"
		if mode == kasm.SanNone {
			label = "EMBSAN-D (dynamic instrumentation, stock binary)"
		}
		fmt.Printf("=== %s ===\n", label)

		fw, err := firmware.BuildSyzbotCorpus(mode)
		if err != nil {
			log.Fatal(err)
		}
		inst, err := embsan.New(core.Config{
			Image:      fw.Image,
			Sanitizers: []string{"kasan"},
			Machine:    emu.Config{MaxHarts: 2},
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := inst.Boot(100_000_000); err != nil {
			log.Fatal(err)
		}
		inst.Snapshot()

		for _, fn := range bugs {
			bug, ok := fw.BugByFn(fn)
			if !ok {
				log.Fatalf("no bug %s", fn)
			}
			inst.Restore()
			res := inst.Exec(gabi.Prog{bug.Trigger()}.Encode(), 50_000_000)
			if len(res.Reports) == 0 {
				fmt.Printf("%-22s (%s): NOT DETECTED\n", fn, bug.Def.KernelVer)
				continue
			}
			r := res.Reports[0]
			fmt.Printf("%-22s (%s): %s\n", fn, bug.Def.KernelVer, r.Title())
		}
		fmt.Println()
	}
	fmt.Println("The global out-of-bounds needs compile-time redzones — exactly the")
	fmt.Println("difference between EMBSAN-C and EMBSAN-D the paper's Table 2 shows.")
}
