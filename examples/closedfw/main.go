// Closedfw: sanitizing closed-source binary-only firmware. The TP-Link
// image ships stripped — no symbols, no metadata — so the Prober's
// multi-pass dry run discovers the allocator behaviourally (entry point,
// which argument is the size, the heap bounds), and EMBSAN still catches
// a malformed-packet overflow in the PPPoE daemon.
package main

import (
	"fmt"
	"log"

	"embsan"
	"embsan/internal/core"
	"embsan/internal/emu"
	"embsan/internal/probe"
)

func main() {
	fw, err := embsan.BuildFirmware("TP-Link WDR-7660")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("image %q: stripped=%v, %d text bytes\n\n",
		fw.Image.Name, fw.Image.Stripped, len(fw.Image.Text))

	// Show what the Prober recovers from the binary alone.
	res, err := embsan.Probe(fw.Image, probe.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("probing mode: %s\n%s\n", res.Mode, res.Text())

	// Attach EMBSAN-D and feed the malformed PPPoE discovery frame.
	inst, err := embsan.New(core.Config{
		Image:      fw.Image,
		Sanitizers: []string{"kasan"},
		Machine:    emu.Config{MaxHarts: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := inst.Boot(100_000_000); err != nil {
		log.Fatal(err)
	}
	inst.Snapshot()

	for _, bug := range fw.Bugs {
		inst.Restore()
		r := inst.Exec(bug.Trigger, 50_000_000)
		fmt.Printf("service %s (%s):\n", bug.Fn, bug.Location)
		for _, rep := range r.Reports {
			fmt.Print(rep.Format(fw.Image))
		}
		if len(r.Reports) == 0 {
			fmt.Println("  no report")
		}
	}
	fmt.Println("Reports carry raw addresses — the firmware has no symbols to offer.")
}
