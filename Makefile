GO ?= go
FUZZTIME ?= 10s
BENCH_EXECS ?= 8000
TIMELINE_EXECS ?= 2000

.PHONY: build vet test test-short race lint elide-audit obs-check explain-check monitor-check fuzz-smoke bench-parallel bench-record bench-trend bench-check rehost-check races-check ci ci-short

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The whole suite under the race detector — the scheduler's
# one-Machine-per-goroutine invariant is enforced here.
race:
	$(GO) test -race ./...

race-short:
	$(GO) test -race -short ./...

# Source formatting plus the static instrumentation-completeness audit:
# every registry firmware (rebuilt as EMBSAN-C where possible) must lint
# clean, and the linter must prove it catches a deliberately broken build.
lint:
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then \
		echo "gofmt needed:"; echo "$$fmt"; exit 1; fi
	$(GO) run ./cmd/embsan lint -all
	$(GO) run ./cmd/embsan lint -selftest

# The link-time elision audit: every registry firmware is elided and every
# recorded elision's safety proof re-derived, and the auditor must prove it
# catches a deliberately bogus elision.
elide-audit:
	$(GO) run ./cmd/embsan lint -elide -all
	$(GO) run ./cmd/embsan lint -elide -selftest

# Observability checks: trace a registry firmware end to end (the exporter
# validates its own Chrome trace_event output and two runs must be
# byte-identical), prove the off path allocates nothing, and run the paired
# traced/untraced campaign comparison (identical outcomes, phase columns
# only when asked for).
obs-check:
	@dir=$$(mktemp -d); trap 'rm -rf "$$dir"' EXIT; set -e; \
	mkdir -p "$$dir/a" "$$dir/b"; \
	$(GO) run ./cmd/embsan trace -firmware InfiniTime -out "$$dir/a" -validate; \
	$(GO) run ./cmd/embsan trace -firmware InfiniTime -out "$$dir/b" -validate >/dev/null; \
	cmp "$$dir/a/InfiniTime.trace.json" "$$dir/b/InfiniTime.trace.json"; \
	cmp "$$dir/a/InfiniTime.folded" "$$dir/b/InfiniTime.folded"; \
	cmp "$$dir/a/InfiniTime.metrics.json" "$$dir/b/InfiniTime.metrics.json"; \
	echo "obs-check: trace output is byte-reproducible"
	$(GO) test ./internal/obs -run 'TestEmitZeroAlloc|TestChromeTraceExport' -count 1
	$(GO) test ./internal/obs/timeline -run TestAdvanceZeroAlloc -count 1
	$(GO) test ./internal/exps -run 'TestTraceOffIsNoop|TestTimelineOffIsNoop' -count 1

# Monitor gate: the headless HTTP-client test drives every `embsan monitor`
# endpoint (SSE stream, OpenMetrics scrape, artifact downloads) and asserts
# the served EMTL byte-equals an offline run — liveness is a view, never an
# input — then the subcommand itself runs one short monitored set end to end.
monitor-check:
	$(GO) test ./internal/exps -run 'TestMonitorEndpoints|TestMonitorArtifactsGatedUntilDone' -count 1
	$(GO) run ./cmd/embsan monitor -firmware InfiniTime -execs 500 -addr 127.0.0.1:0 -exit-when-done

# Bug-forensics gate: explain the seeded InfiniTime use-after-free twice and
# require byte-identical report text and explain.json (the deterministic
# replay contract of `embsan explain`), then run the forensic determinism
# and ground-truth backtrace tests.
explain-check:
	@dir=$$(mktemp -d); trap 'rm -rf "$$dir"' EXIT; set -e; \
	mkdir -p "$$dir/a" "$$dir/b"; \
	$(GO) run ./cmd/embsan explain -firmware InfiniTime -bug st7789_draw -seed 7 -out "$$dir/a"; \
	$(GO) run ./cmd/embsan explain -firmware InfiniTime -bug st7789_draw -seed 7 -out "$$dir/b" >/dev/null; \
	cmp "$$dir/a/InfiniTime.explain.txt" "$$dir/b/InfiniTime.explain.txt"; \
	cmp "$$dir/a/InfiniTime.explain.json" "$$dir/b/InfiniTime.explain.json"; \
	echo "explain-check: explain output is byte-reproducible"
	$(GO) test ./internal/exps -run 'TestExplainSeededUAF|TestExplainDeterministicAcrossWorkers' -count 1
	$(GO) test ./internal/obs/forensics -count 1

# Short smoke runs of the native fuzz targets (corpora under testdata/).
# Minimization is capped at one exec: the default 60s budget would eat the
# whole smoke run shrinking the first coverage-expanding input.
fuzz-smoke:
	$(GO) test ./internal/isa -fuzz FuzzDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/dsl -fuzz FuzzParseRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/static -fuzz FuzzRecoverCFG -fuzztime $(FUZZTIME)
	$(GO) test ./internal/static -fuzz FuzzRehostLift -fuzztime $(FUZZTIME) -fuzzminimizetime 1x
	$(GO) test ./internal/static -fuzz FuzzLocksets -fuzztime $(FUZZTIME) -fuzzminimizetime 1x
	$(GO) test ./internal/static/absint -fuzz FuzzAbsint -fuzztime $(FUZZTIME) -fuzzminimizetime 1x
	$(GO) test ./internal/obs -fuzz FuzzTraceRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/obs/timeline -fuzz FuzzTimelineRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/obs/forensics -fuzz FuzzExplainRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/emu -fuzz FuzzChainedExecution -fuzztime $(FUZZTIME) -fuzzminimizetime 1x

# Static rehosting gate: emit the binary-only mystery image to a file, lift
# it from the encoded bytes alone, boot it through the synthesized bridge,
# have the Prober confirm the allocator, run a short campaign — then audit
# the recorded profile against the image and prove the auditor catches a
# tampered one.
rehost-check:
	@dir=$$(mktemp -d); trap 'rm -rf "$$dir"' EXIT; set -e; \
	$(GO) run ./cmd/embsan rehost -emit-mystery x86e -image-out "$$dir/mystery.img"; \
	$(GO) run ./cmd/embsan rehost -image "$$dir/mystery.img" -profile-out "$$dir/mystery.profile" -campaign 2000; \
	$(GO) run ./cmd/embsan lint -rehost -image "$$dir/mystery.img" -profile "$$dir/mystery.profile"; \
	$(GO) run ./cmd/embsan lint -rehost -selftest

# The pooled-scheduler throughput series (serial runner vs worker pool).
bench-parallel:
	$(GO) test -run xxx -bench BenchmarkParallelCampaigns -benchtime 2x .

# Re-record the translation fast-path bench artefact: every registry
# firmware, fast engine vs NoFastPaths baseline on the identical replay
# workload. Run after engine changes and commit the refreshed JSON — the
# repo carries the throughput trajectory alongside the code.
bench-record:
	$(GO) run ./cmd/embsan-bench -record BENCH_translate.json -record-execs $(BENCH_EXECS)
	$(GO) run ./cmd/embsan-bench -record-rehost BENCH_rehost.json
	$(GO) run ./cmd/embsan-bench -record-races BENCH_races.json

# Re-record the timeline-sampling overhead artefact and append one summary
# row — distilled from all four BENCH_*.json files — to the cross-PR
# throughput trajectory in BENCH_trend.json. Run after bench-record so the
# sibling artefacts reflect the same tree.
bench-trend:
	$(GO) run ./cmd/embsan-bench -record-timeline BENCH_timeline.json -timeline-execs $(TIMELINE_EXECS)
	$(GO) run ./cmd/embsan-bench -record-trend BENCH_trend.json

# CI gate on the committed artefacts: schemas and registry coverage must
# match the current code (measured values are machine-dependent and never
# diffed), and a bounded live smoke must show the fast paths engaging —
# zero chain hits or zero dispatches elided fails the build.
bench-check:
	$(GO) run ./cmd/embsan-bench -bench-check BENCH_translate.json
	$(GO) run ./cmd/embsan-bench -rehost-check BENCH_rehost.json
	$(GO) run ./cmd/embsan-bench -timeline-check BENCH_timeline.json
	$(GO) run ./cmd/embsan-bench -trend-check BENCH_trend.json

# Static race-triage gate: every registry firmware must be clean-or-expected
# under the lockset analysis (seeded races flagged, race-free firmware with
# zero candidate pairs), the elision auditor must catch a planted bogus
# lockset, and the committed guided-vs-uniform artefact must record the
# lockset guidance beating uniform KCSAN sampling (virtual-clock exec counts
# are machine-independent, so the values themselves are validated).
races-check:
	$(GO) run ./cmd/embsan lint -races -all
	$(GO) run ./cmd/embsan lint -races -selftest
	$(GO) run ./cmd/embsan-bench -races-check BENCH_races.json

ci: vet build lint elide-audit obs-check explain-check monitor-check race fuzz-smoke rehost-check bench-check races-check

# ci with the long campaign/overhead experiments skipped.
ci-short: vet build lint elide-audit obs-check explain-check monitor-check race-short fuzz-smoke rehost-check bench-check races-check
