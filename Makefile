GO ?= go
FUZZTIME ?= 10s

.PHONY: build vet test test-short race fuzz-smoke bench-parallel ci ci-short

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The whole suite under the race detector — the scheduler's
# one-Machine-per-goroutine invariant is enforced here.
race:
	$(GO) test -race ./...

race-short:
	$(GO) test -race -short ./...

# Short smoke runs of the native fuzz targets (corpora under testdata/).
fuzz-smoke:
	$(GO) test ./internal/isa -fuzz FuzzDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/dsl -fuzz FuzzParseRoundTrip -fuzztime $(FUZZTIME)

# The pooled-scheduler throughput series (serial runner vs worker pool).
bench-parallel:
	$(GO) test -run xxx -bench BenchmarkParallelCampaigns -benchtime 2x .

ci: vet build race fuzz-smoke

# ci with the long campaign/overhead experiments skipped.
ci-short: vet build race-short fuzz-smoke
