module embsan

go 1.22
