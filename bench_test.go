// Benchmarks regenerating the paper's evaluation artefacts (one bench per
// table and figure series) plus the ablation benches DESIGN.md calls out.
// Figure 2's slowdown factors are the ratios between the BenchmarkFigure2*
// series' ns/op on identical workloads.
package embsan_test

import (
	"flag"
	"fmt"
	"testing"

	"embsan/internal/core"
	"embsan/internal/emu"
	"embsan/internal/exps"
	"embsan/internal/guest/elinux"
	"embsan/internal/guest/firmware"
	"embsan/internal/guest/gabi"
	"embsan/internal/isa"
	"embsan/internal/kasm"
	"embsan/internal/san"
)

// ---- Table 1 ----

// BenchmarkTable1Registry builds all eleven evaluation firmware images.
func BenchmarkTable1Registry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fws, err := firmware.BuildAll()
		if err != nil {
			b.Fatal(err)
		}
		if len(fws) != 11 {
			b.Fatal("registry incomplete")
		}
	}
}

// ---- Table 2 ----

// BenchmarkTable2Replay replays the 25 known-bug reproducers under
// EMBSAN-D (the heavier of the two modes).
func BenchmarkTable2Replay(b *testing.B) {
	fw, err := firmware.BuildSyzbotCorpus(kasm.SanNone)
	if err != nil {
		b.Fatal(err)
	}
	inst := mustBoot(b, fw.Image, []string{"kasan"}, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, bug := range fw.Bugs {
			inst.Restore()
			res := inst.Exec(gabi.Prog{bug.Trigger()}.Encode(), 50_000_000)
			if len(res.Reports) == 0 && !bug.Def.NeedsCompileTime() {
				b.Fatalf("%s not detected", bug.Def.Fn)
			}
		}
	}
}

// ---- Table 3 / Table 4 ----

// BenchmarkTable3Campaign runs a bounded fuzzing campaign against the
// bcm63xx firmware (EMBSAN-D, five seeded bugs).
func BenchmarkTable3Campaign(b *testing.B) {
	fw, err := firmware.Build("OpenWRT-bcm63xx")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := exps.RunCampaign(fw, exps.CampaignOptions{Execs: 3000, Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		_ = c
	}
}

// BenchmarkElisionStats measures the static safety-proof dispatch saving
// on one EMBSAN-C firmware: the plain and elided deployments replay the
// same deterministic input stream, and the elided fraction of dynamic
// SANCK traps is reported as a metric (the tentpole's >=15% target; the
// registry-wide table is `embsan-bench -elision`).
func BenchmarkElisionStats(b *testing.B) {
	fw, err := firmware.Build("OpenWRT-armvirt")
	if err != nil {
		b.Fatal(err)
	}
	fws := []*firmware.Firmware{fw}
	var frac float64
	for i := 0; i < b.N; i++ {
		stats, err := exps.RunElisionStats(fws, 7)
		if err != nil {
			b.Fatal(err)
		}
		frac = stats[0].Frac()
		if stats[0].Elided == 0 {
			b.Fatal("no dynamic traps elided")
		}
	}
	b.ReportMetric(frac*100, "%elided")
}

// campaignSeed parameterises the campaign benchmark series: the default
// matches the evaluation seed, and sweeping it checks the throughput numbers
// are not an artefact of one lucky corpus trajectory.
var campaignSeed = flag.Int64("campaign-seed", 7, "base seed for the campaign benchmark series")

// BenchmarkParallelCampaigns compares the fresh-boot serial runner against
// the pooled scheduler (internal/sched) on a multi-campaign workload: the
// pool warms each firmware once per worker and rewinds it by
// snapshot/restore between campaigns, so the per-campaign boot+labelling
// cost is amortised away. The pooled/4-workers series should sustain at
// least twice the serial runner's campaign throughput. Beyond campaigns/s,
// each series reports execs/s (the paper's throughput unit) and chain-hit%
// (the fraction of block transfers the translation engine resolved through
// an exit chain instead of the dispatcher).
func BenchmarkParallelCampaigns(b *testing.B) {
	fw, err := firmware.Build("OpenWRT-x86_64")
	if err != nil {
		b.Fatal(err)
	}
	const repeats, execs = 32, 15
	bench := func(b *testing.B, run func() ([]*exps.Campaign, error)) {
		var execsDone, chainHits, transfers uint64
		for i := 0; i < b.N; i++ {
			cs, err := run()
			if err != nil {
				b.Fatal(err)
			}
			for _, c := range cs {
				execsDone += uint64(c.Stats.Execs)
				chainHits += c.Engine.ChainHits
				transfers += c.Engine.ChainHits + c.Engine.Dispatches
			}
		}
		sec := b.Elapsed().Seconds()
		b.ReportMetric(float64(b.N*repeats)/sec, "campaigns/s")
		b.ReportMetric(float64(execsDone)/sec, "execs/s")
		if transfers > 0 {
			b.ReportMetric(100*float64(chainHits)/float64(transfers), "chain-hit%")
		}
	}
	b.Run("serial-fresh", func(b *testing.B) {
		bench(b, func() ([]*exps.Campaign, error) {
			out := make([]*exps.Campaign, 0, repeats)
			for r := 0; r < repeats; r++ {
				c, err := exps.RunCampaign(fw, exps.CampaignOptions{Execs: execs, Seed: *campaignSeed})
				if err != nil {
					return nil, err
				}
				out = append(out, c)
			}
			return out, nil
		})
	})
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("pooled-%d-workers", workers), func(b *testing.B) {
			bench(b, func() ([]*exps.Campaign, error) {
				opts := exps.CampaignOptions{Execs: execs, Seed: *campaignSeed, Workers: workers, Repeats: repeats}
				run, err := exps.RunCampaignSet([]*firmware.Firmware{fw}, opts)
				if err != nil {
					return nil, err
				}
				return run.Campaigns, nil
			})
		})
	}
}

// ---- Figure 2 series ----

func figure2Workload(fw *firmware.Firmware) [][]byte {
	var out [][]byte
	for i := uint32(0); i < 12; i++ {
		p := gabi.Prog{
			{NR: i % 4, NArgs: 4, Args: [4]uint32{i * 13 % 200, i % 7, i % 11, i % 5}},
			{NR: (i + 1) % 4, NArgs: 4, Args: [4]uint32{80, 1, 0, 0}},
			{NR: (i + 2) % 4, NArgs: 4, Args: [4]uint32{40, 2, 3, 4}},
		}
		out = append(out, p.Encode())
	}
	return out
}

func mustBoot(b *testing.B, img *kasm.Image, sans []string, noSan bool) *core.Instance {
	b.Helper()
	inst, err := core.New(core.Config{
		Image:       img,
		Sanitizers:  sans,
		NoSanitizer: noSan,
		Machine:     emu.Config{MaxHarts: 2},
		KCSAN:       san.KCSANConfig{SampleInterval: 20, Delay: 2000},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := inst.Boot(500_000_000); err != nil {
		b.Fatal(err)
	}
	inst.Snapshot()
	return inst
}

func benchWorkload(b *testing.B, name string, mode kasm.SanitizeMode, sans []string) {
	b.Helper()
	fw, err := firmware.BuildVariant(name, mode)
	if err != nil {
		b.Fatal(err)
	}
	inst := mustBoot(b, fw.Image, sans, len(sans) == 0)
	workload := figure2Workload(fw)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, in := range workload {
			res := inst.Exec(in, 100_000_000)
			if !res.Done {
				b.Fatalf("workload stalled: %v %v", res.Stop, res.Fault)
			}
		}
	}
}

func BenchmarkFigure2Bare(b *testing.B) {
	benchWorkload(b, "OpenWRT-x86_64", kasm.SanNone, nil)
}

func BenchmarkFigure2EmbsanCKASAN(b *testing.B) {
	benchWorkload(b, "OpenWRT-x86_64", kasm.SanEmbsanC, []string{"kasan"})
}

func BenchmarkFigure2EmbsanDKASAN(b *testing.B) {
	benchWorkload(b, "OpenWRT-x86_64", kasm.SanNone, []string{"kasan"})
}

func BenchmarkFigure2NativeKASAN(b *testing.B) {
	benchWorkload(b, "OpenWRT-x86_64", kasm.SanNativeKASAN, nil)
}

func BenchmarkFigure2EmbsanKCSAN(b *testing.B) {
	benchWorkload(b, "OpenWRT-x86_64", kasm.SanEmbsanC, []string{"kcsan"})
}

func BenchmarkFigure2NativeKCSAN(b *testing.B) {
	benchWorkload(b, "OpenWRT-x86_64", kasm.SanNativeKCSAN, nil)
}

func BenchmarkFigure2RTOSEmbsanKASAN(b *testing.B) {
	fw, err := firmware.Build("InfiniTime")
	if err != nil {
		b.Fatal(err)
	}
	inst := mustBoot(b, fw.Image, []string{"kasan"}, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, in := range fw.Seeds {
			if res := inst.Exec(in, 100_000_000); !res.Done {
				b.Fatal("workload stalled")
			}
		}
	}
}

// ---- Ablations (DESIGN.md) ----

// BenchmarkAblationProbeFusion compares translation-template probe
// insertion against paying an (empty) callback on every memory access:
// the difference is the cost the template approach avoids when no probe
// is registered.
func BenchmarkAblationProbeFusion(b *testing.B) {
	fw, err := firmware.BuildVariant("OpenWRT-x86_64", kasm.SanNone)
	if err != nil {
		b.Fatal(err)
	}
	workload := figure2Workload(fw)
	run := func(b *testing.B, probe bool) {
		inst := mustBoot(b, fw.Image, nil, true)
		if probe {
			inst.Machine.SetProbes(emu.ProbeSet{Mem: func(ev *emu.MemEvent) {}})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, in := range workload {
				if res := inst.Exec(in, 100_000_000); !res.Done {
					b.Fatal("stalled")
				}
			}
		}
	}
	b.Run("no-probes", func(b *testing.B) { run(b, false) })
	b.Run("empty-probe-every-access", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationHypercallFastPath compares the EMBSAN-C hypercall fast
// path (SANCK-only interception) against routing the same compile-time-
// instrumented image through the generic every-access probes as well.
func BenchmarkAblationHypercallFastPath(b *testing.B) {
	fw, err := firmware.BuildVariant("OpenWRT-x86_64", kasm.SanEmbsanC)
	if err != nil {
		b.Fatal(err)
	}
	workload := figure2Workload(fw)
	run := func(b *testing.B, fastPath bool) {
		inst := mustBoot(b, fw.Image, []string{"kasan"}, false)
		if !fastPath {
			// Disable the fast path: check every executed access instead of
			// only the compile-time SANCK sites.
			rt := inst.Runtime
			inst.Machine.SetProbes(emu.ProbeSet{
				Mem:   func(ev *emu.MemEvent) { rt.KASANEngine().CheckAccess(ev.Addr, ev.Size, ev.Write, ev.PC, ev.Hart) },
				Sanck: func(ev *emu.MemEvent) {},
			})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, in := range workload {
				if res := inst.Exec(in, 100_000_000); !res.Done {
					b.Fatal("stalled")
				}
			}
		}
	}
	b.Run("hypercall-fast-path", func(b *testing.B) { run(b, true) })
	b.Run("generic-probes", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationTBCache measures the translation-block cache.
func BenchmarkAblationTBCache(b *testing.B) {
	fw, err := firmware.BuildVariant("OpenWRT-x86_64", kasm.SanNone)
	if err != nil {
		b.Fatal(err)
	}
	workload := figure2Workload(fw)
	run := func(b *testing.B, noCache bool) {
		inst, err := core.New(core.Config{
			Image:       fw.Image,
			NoSanitizer: true,
			Machine:     emu.Config{MaxHarts: 2, NoTBCache: noCache},
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := inst.Boot(500_000_000); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, in := range workload {
				if res := inst.Exec(in, 100_000_000); !res.Done {
					b.Fatal("stalled")
				}
			}
		}
	}
	b.Run("cached", func(b *testing.B) { run(b, false) })
	b.Run("uncached", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationKCSANSampling sweeps the watchpoint sampling interval.
func BenchmarkAblationKCSANSampling(b *testing.B) {
	fw, err := firmware.BuildVariant("OpenWRT-x86_64", kasm.SanEmbsanC)
	if err != nil {
		b.Fatal(err)
	}
	workload := figure2Workload(fw)
	for _, interval := range []uint64{4, 20, 61, 499} {
		b.Run(intervalName(interval), func(b *testing.B) {
			inst, err := core.New(core.Config{
				Image:      fw.Image,
				Sanitizers: []string{"kcsan"},
				Machine:    emu.Config{MaxHarts: 2},
				KCSAN:      san.KCSANConfig{SampleInterval: interval, Delay: 2000},
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := inst.Boot(500_000_000); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, in := range workload {
					if res := inst.Exec(in, 100_000_000); !res.Done {
						b.Fatal("stalled")
					}
				}
			}
		})
	}
}

func intervalName(v uint64) string {
	switch v {
	case 4:
		return "interval-4"
	case 20:
		return "interval-20"
	case 61:
		return "interval-61"
	default:
		return "interval-499"
	}
}

// BenchmarkAblationUnifiedShadow compares the unified shadow (one array
// serving all sanitizer functionalities) against split per-sanitizer
// shadows on the poison/unpoison/check cycle of the KASAN hot path.
func BenchmarkAblationUnifiedShadow(b *testing.B) {
	const ram = 1 << 22
	run := func(b *testing.B, shadows []*san.Shadow) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			addr := uint32(0x1000 + (i%1024)*64)
			for _, s := range shadows {
				s.Poison(addr, 64, san.CodeHeapUninit)
				s.Unpoison(addr, 48)
			}
			for _, s := range shadows {
				if _, _, ok := s.Check(addr, 48); !ok {
					b.Fatal("false positive")
				}
			}
		}
	}
	b.Run("unified", func(b *testing.B) { run(b, []*san.Shadow{san.NewShadow(ram)}) })
	b.Run("split", func(b *testing.B) {
		run(b, []*san.Shadow{san.NewShadow(ram), san.NewShadow(ram)})
	})
}

// BenchmarkBuildSyzbotCorpus measures the toolchain building the largest
// kernel (25 seeded bugs + base modules).
func BenchmarkBuildSyzbotCorpus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := elinux.Build(elinux.Board{
			Name: "bench", Arch: isa.ArchX86E, Mode: kasm.SanEmbsanC, Table2: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
