package embsan_test

import (
	"strings"
	"testing"

	"embsan"
	"embsan/internal/probe"
)

// TestPublicAPIFlow exercises the documented public-facade workflow end to
// end: build a bundled firmware, distil sanitizers, probe, boot, execute a
// trigger and read the formatted report.
func TestPublicAPIFlow(t *testing.T) {
	if len(embsan.FirmwareNames) != 11 {
		t.Fatalf("FirmwareNames = %d", len(embsan.FirmwareNames))
	}
	fw, err := embsan.BuildFirmware("InfiniTime")
	if err != nil {
		t.Fatal(err)
	}

	spec, err := embsan.Distill("kasan", "kcsan")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "kasan+kcsan" {
		t.Errorf("merged spec name = %q", spec.Name)
	}

	probed, err := embsan.Probe(fw.Image, probe.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(probed.Text(), "pvPortMalloc") {
		t.Errorf("probe output lacks the allocator:\n%s", probed.Text())
	}

	inst, err := embsan.New(embsan.Config{
		Image:      fw.Image,
		Sanitizers: []string{"kasan"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Boot(100_000_000); err != nil {
		t.Fatal(err)
	}
	inst.Snapshot()

	res := inst.Exec(fw.Bugs[0].Trigger, 50_000_000)
	if len(res.Reports) == 0 {
		t.Fatal("trigger produced no report")
	}
	text := res.Reports[0].Format(inst.Image())
	for _, want := range []string{"BUG: KASAN", fw.Bugs[0].Fn, "object at"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}

	// The fuzzer is reachable through the façade too.
	inst.Restore()
	f, err := embsan.NewFuzzer(embsan.FuzzConfig{
		Instance: inst,
		Frontend: 1, // bytes
		Seeds:    fw.Seeds,
		MaxExecs: 200,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := f.Run()
	if out.Stats.Execs != 200 {
		t.Errorf("execs = %d", out.Stats.Execs)
	}
}
